#include "periodica/core/pattern_miner.h"

#include <cmath>
#include <cstdint>
#include <string_view>

#include <gtest/gtest.h>

#include "periodica/util/rng.h"

namespace periodica {
namespace {

SymbolSeries Make(std::string_view text) {
  auto series = SymbolSeries::FromString(text);
  EXPECT_TRUE(series.ok()) << series.status();
  return std::move(series).ValueOrDie();
}

const ScoredPattern* Find(const PatternSet& set, const std::string& repr,
                          const Alphabet& alphabet) {
  for (const ScoredPattern& scored : set.patterns()) {
    if (scored.pattern.ToString(alphabet) == repr) return &scored;
  }
  return nullptr;
}

TEST(PatternMinerTest, PaperExamplePatterns) {
  // Sect. 2.3 with T = abcabbabcb, p = 3: candidate patterns are a**, *b*
  // and ab*; the support of ab* is 2/3 (Sect. 3.2's W'_p example); the
  // single-symbol supports are 2/3 for a** and 1 for *b*.
  const SymbolSeries series = Make("abcabbabcb");
  PatternMinerOptions options;
  options.min_support = 0.5;
  auto patterns = MinePatternsForPeriod(series, 3, /*threshold=*/0.5, options);
  ASSERT_TRUE(patterns.ok()) << patterns.status();
  const Alphabet& alphabet = series.alphabet();

  const ScoredPattern* a_pattern = Find(*patterns, "a**", alphabet);
  ASSERT_NE(a_pattern, nullptr);
  EXPECT_DOUBLE_EQ(a_pattern->support, 2.0 / 3.0);

  const ScoredPattern* b_pattern = Find(*patterns, "*b*", alphabet);
  ASSERT_NE(b_pattern, nullptr);
  EXPECT_DOUBLE_EQ(b_pattern->support, 1.0);

  const ScoredPattern* ab_pattern = Find(*patterns, "ab*", alphabet);
  ASSERT_NE(ab_pattern, nullptr);
  EXPECT_DOUBLE_EQ(ab_pattern->support, 2.0 / 3.0);
  EXPECT_EQ(ab_pattern->count, 2u);

  EXPECT_EQ(patterns->size(), 3u);
}

TEST(PatternMinerTest, SupportThresholdPrunes) {
  const SymbolSeries series = Make("abcabbabcb");
  PatternMinerOptions options;
  options.min_support = 0.9;  // only *b* survives
  auto patterns = MinePatternsForPeriod(series, 3, 0.5, options);
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 1u);
  EXPECT_EQ(patterns->patterns()[0].pattern.ToString(series.alphabet()),
            "*b*");
}

TEST(PatternMinerTest, PerfectSeriesYieldsFullPattern) {
  const SymbolSeries series = Make("abcabcabcabc");  // n = 12, 4 occurrences
  PatternMinerOptions options;
  options.min_support = 0.7;
  auto patterns = MinePatternsForPeriod(series, 3, 1.0, options);
  ASSERT_TRUE(patterns.ok());
  // Single-symbol supports (Definition 2, F2-based) are exactly 1; the
  // multi-symbol W'_p estimate counts occurrences that persist into the next
  // one, so on 4 occurrences it tops out at 3/4 — the paper's own formula.
  const ScoredPattern* full = Find(*patterns, "abc", series.alphabet());
  ASSERT_NE(full, nullptr);
  EXPECT_DOUBLE_EQ(full->support, 0.75);
  EXPECT_EQ(full->count, 3u);
  const ScoredPattern* single = Find(*patterns, "a**", series.alphabet());
  ASSERT_NE(single, nullptr);
  EXPECT_DOUBLE_EQ(single->support, 1.0);
  // 3 single-symbol patterns + 4 multi-symbol slot subsets.
  EXPECT_EQ(patterns->size(), 7u);
}

TEST(PatternMinerTest, ExplicitSymbolSetsRestrictSearch) {
  const SymbolSeries series = Make("abcabcabcabc");
  std::vector<std::vector<SymbolId>> sets(3);
  sets[0] = {0};  // only slot 0 = a may be fixed
  PatternMinerOptions options;
  options.min_support = 0.5;
  auto patterns = MinePatternsForPeriod(series, 3, sets, options);
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 1u);
  EXPECT_EQ(patterns->patterns()[0].pattern.ToString(series.alphabet()),
            "a**");
}

TEST(PatternMinerTest, MaxPatternsTruncates) {
  const SymbolSeries series = Make("abcabcabcabc");
  PatternMinerOptions options;
  options.min_support = 0.5;
  options.max_patterns = 2;
  auto patterns = MinePatternsForPeriod(series, 3, 1.0, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->truncated());
  EXPECT_EQ(patterns->size(), 2u);
}

TEST(PatternMinerTest, InvalidArguments) {
  const SymbolSeries series = Make("abcabc");
  PatternMinerOptions options;
  EXPECT_TRUE(MinePatternsForPeriod(series, 0, 0.5, options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MinePatternsForPeriod(series, 6, 0.5, options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MinePatternsForPeriod(series, 3, 0.0, options)
                  .status()
                  .IsInvalidArgument());
  options.min_support = 2.0;
  EXPECT_TRUE(MinePatternsForPeriod(series, 3, 0.5, options)
                  .status()
                  .IsInvalidArgument());
  std::vector<std::vector<SymbolId>> wrong_size(2);
  PatternMinerOptions ok_options;
  EXPECT_TRUE(MinePatternsForPeriod(series, 3, wrong_size, ok_options)
                  .status()
                  .IsInvalidArgument());
}

// Brute-force verification of multi-symbol supports on random series: for
// every emitted multi-symbol pattern, recount the aligned occurrences
// directly from the definition of W'_p.
class PatternSupportProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PatternSupportProperty, EmittedSupportsMatchBruteForce) {
  Rng rng(GetParam());
  SymbolSeries series(Alphabet::Latin(3));
  for (int i = 0; i < 60; ++i) {
    series.Append(static_cast<SymbolId>(rng.UniformInt(3)));
  }
  const std::size_t period = 4;
  PatternMinerOptions options;
  options.min_support = 0.2;
  auto patterns = MinePatternsForPeriod(series, period, 0.2, options);
  ASSERT_TRUE(patterns.ok());
  const std::size_t occurrences = series.size() / period;
  for (const ScoredPattern& scored : patterns->patterns()) {
    if (scored.pattern.NumFixed() < 2) continue;
    std::uint64_t count = 0;
    for (std::size_t m = 0; m < occurrences; ++m) {
      bool all_match = true;
      for (std::size_t l = 0; l < period; ++l) {
        const auto slot = scored.pattern.At(l);
        if (!slot.has_value()) continue;
        const std::size_t i = l + m * period;
        if (i + period >= series.size() || series[i] != *slot ||
            series[i + period] != *slot) {
          all_match = false;
          break;
        }
      }
      if (all_match) ++count;
    }
    EXPECT_EQ(scored.count, count)
        << scored.pattern.ToString(series.alphabet());
    EXPECT_DOUBLE_EQ(scored.support,
                     static_cast<double>(count) /
                         static_cast<double>(occurrences));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternSupportProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(PatternMinerTest, NoFrequentSymbolsYieldsEmptySet) {
  // With threshold 1.0 on a random-ish series, no symbol is perfectly
  // periodic; the pattern set is empty.
  const SymbolSeries series = Make("abcbacbcabacbabc");
  PatternMinerOptions options;
  options.min_support = 1.0;
  auto patterns = MinePatternsForPeriod(series, 5, 1.0, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->empty());
}

}  // namespace
}  // namespace periodica
