#include "periodica/core/pattern.h"

#include <gtest/gtest.h>

namespace periodica {
namespace {

TEST(PatternTest, AllDontCareByDefault) {
  PeriodicPattern pattern(4);
  EXPECT_EQ(pattern.period(), 4u);
  EXPECT_EQ(pattern.NumFixed(), 0u);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_TRUE(pattern.IsDontCare(l));
  }
}

TEST(PatternTest, SetAndClearSlots) {
  PeriodicPattern pattern(3);
  pattern.SetSlot(0, 0);
  pattern.SetSlot(1, 1);
  EXPECT_EQ(pattern.NumFixed(), 2u);
  EXPECT_FALSE(pattern.IsDontCare(0));
  EXPECT_EQ(*pattern.At(1), 1);
  pattern.ClearSlot(0);
  EXPECT_TRUE(pattern.IsDontCare(0));
  EXPECT_EQ(pattern.NumFixed(), 1u);
}

TEST(PatternTest, ToStringPaperNotation) {
  // The paper writes the pattern with a at position 0 and b at position 1 of
  // period 3 as "ab*".
  const Alphabet alphabet = Alphabet::Latin(3);
  PeriodicPattern pattern(3);
  pattern.SetSlot(0, 0);
  pattern.SetSlot(1, 1);
  EXPECT_EQ(pattern.ToString(alphabet), "ab*");
}

TEST(PatternTest, FromStringRoundTrip) {
  const Alphabet alphabet = Alphabet::Latin(5);
  const auto pattern = PeriodicPattern::FromString("a*c**", alphabet);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->period(), 5u);
  EXPECT_EQ(pattern->NumFixed(), 2u);
  EXPECT_EQ(pattern->ToString(alphabet), "a*c**");
}

TEST(PatternTest, FromStringRejectsUnknownSymbol) {
  const Alphabet alphabet = Alphabet::Latin(2);
  EXPECT_FALSE(PeriodicPattern::FromString("axz", alphabet).has_value());
}

TEST(PatternTest, Equality) {
  PeriodicPattern a(2);
  a.SetSlot(0, 1);
  PeriodicPattern b(2);
  b.SetSlot(0, 1);
  EXPECT_EQ(a, b);
  b.SetSlot(1, 0);
  EXPECT_FALSE(a == b);
}

TEST(PatternSetTest, ForPeriodFilters) {
  PatternSet set;
  PeriodicPattern p2(2);
  p2.SetSlot(0, 0);
  PeriodicPattern p3(3);
  p3.SetSlot(0, 0);
  set.Add(ScoredPattern{p2, 0.5, 1});
  set.Add(ScoredPattern{p3, 0.7, 2});
  EXPECT_EQ(set.ForPeriod(2).size(), 1u);
  EXPECT_EQ(set.ForPeriod(3).size(), 1u);
  EXPECT_TRUE(set.ForPeriod(4).empty());
}

TEST(PatternSetTest, SortCanonicalOrdersByPeriodFixedSupport) {
  PatternSet set;
  PeriodicPattern sparse(3);
  sparse.SetSlot(0, 0);
  PeriodicPattern dense(3);
  dense.SetSlot(0, 0);
  dense.SetSlot(1, 1);
  PeriodicPattern small_period(2);
  small_period.SetSlot(0, 0);
  set.Add(ScoredPattern{sparse, 0.9, 9});
  set.Add(ScoredPattern{dense, 0.5, 5});
  set.Add(ScoredPattern{small_period, 0.1, 1});
  set.SortCanonical();
  // Period 2 first; within period 3 the denser pattern leads.
  EXPECT_EQ(set.patterns()[0].pattern.period(), 2u);
  EXPECT_EQ(set.patterns()[1].pattern.NumFixed(), 2u);
  EXPECT_EQ(set.patterns()[2].pattern.NumFixed(), 1u);
}

TEST(PatternSetTest, TruncatedFlag) {
  PatternSet set;
  EXPECT_FALSE(set.truncated());
  set.set_truncated(true);
  EXPECT_TRUE(set.truncated());
}

}  // namespace
}  // namespace periodica
