#include "periodica/baselines/periodic_trends.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "periodica/gen/synthetic.h"

namespace periodica {
namespace {

SymbolSeries Perfect(std::size_t length, std::size_t period,
                     std::uint64_t seed) {
  SyntheticSpec spec;
  spec.length = length;
  spec.alphabet_size = 10;
  spec.period = period;
  spec.seed = seed;
  auto series = GeneratePerfect(spec);
  EXPECT_TRUE(series.ok());
  return std::move(series).ValueOrDie();
}

TEST(PeriodicTrendsTest, ExactDistanceZeroAtTruePeriodMultiples) {
  const SymbolSeries series = Perfect(2000, 25, 1);
  PeriodicTrendsOptions options;
  options.exact = true;
  options.max_period = 200;
  auto candidates = PeriodicTrends(options).Analyze(series);
  ASSERT_TRUE(candidates.ok());
  for (const TrendCandidate& candidate : *candidates) {
    if (candidate.period % 25 == 0) {
      EXPECT_DOUBLE_EQ(candidate.distance, 0.0) << "p=" << candidate.period;
    } else {
      EXPECT_GT(candidate.distance, 0.0) << "p=" << candidate.period;
    }
  }
}

TEST(PeriodicTrendsTest, TruePeriodsRankHighestOnPerfectData) {
  const SymbolSeries series = Perfect(2000, 25, 2);
  PeriodicTrendsOptions options;
  options.exact = true;
  options.max_period = 250;
  auto candidates = PeriodicTrends(options).Analyze(series);
  ASSERT_TRUE(candidates.ok());
  // The ten multiples of 25 occupy the top ten ranks.
  for (std::size_t rank = 0; rank < 10; ++rank) {
    EXPECT_EQ((*candidates)[rank].period % 25, 0u) << "rank " << rank;
  }
  EXPECT_GT(PeriodicTrends::ConfidenceFor(*candidates, 25), 0.95);
}

TEST(PeriodicTrendsTest, TiesFavorLargerPeriods) {
  // The documented bias (paper Sect. 4.1 / Fig. 4): among equally distant
  // periods, the larger one ranks first.
  const SymbolSeries series = Perfect(1000, 20, 3);
  PeriodicTrendsOptions options;
  options.exact = true;
  options.max_period = 100;
  auto candidates = PeriodicTrends(options).Analyze(series);
  ASSERT_TRUE(candidates.ok());
  // All multiples of 20 have distance 0; rank order must be descending
  // period: 100, 80, 60, 40, 20.
  EXPECT_EQ((*candidates)[0].period, 100u);
  EXPECT_EQ((*candidates)[4].period, 20u);
  EXPECT_GT(PeriodicTrends::ConfidenceFor(*candidates, 100),
            PeriodicTrends::ConfidenceFor(*candidates, 20));
}

TEST(PeriodicTrendsTest, SketchApproximatesExactDistances) {
  const SymbolSeries series = Perfect(1024, 32, 4);
  PeriodicTrendsOptions exact_options;
  exact_options.exact = true;
  exact_options.max_period = 128;
  auto exact = PeriodicTrends(exact_options).Analyze(series);
  ASSERT_TRUE(exact.ok());

  PeriodicTrendsOptions sketch_options;
  sketch_options.exact = false;
  sketch_options.num_sketches = 64;  // extra sketches tighten the estimate
  sketch_options.max_period = 128;
  auto sketched = PeriodicTrends(sketch_options).Analyze(series);
  ASSERT_TRUE(sketched.ok());

  // Compare per-period distances (sorted orders may differ slightly).
  auto distance_of = [](const std::vector<TrendCandidate>& candidates,
                        std::size_t period) {
    for (const auto& candidate : candidates) {
      if (candidate.period == period) return candidate.distance;
    }
    return -1.0;
  };
  for (const std::size_t p : {32u, 64u, 96u, 128u}) {
    // Multiples of the true period: exact distance 0, sketch ~0.
    EXPECT_NEAR(distance_of(*sketched, p), distance_of(*exact, p), 1e-6);
  }
  // Non-multiples: within a factor ~2 with 64 sketches (JL concentration).
  for (const std::size_t p : {7u, 30u, 100u}) {
    const double exact_distance = distance_of(*exact, p);
    const double sketch_distance = distance_of(*sketched, p);
    EXPECT_GT(sketch_distance, exact_distance * 0.5);
    EXPECT_LT(sketch_distance, exact_distance * 2.0);
  }
}

TEST(PeriodicTrendsTest, SketchRanksTruePeriodHighly) {
  const SymbolSeries series = Perfect(4096, 25, 5);
  PeriodicTrendsOptions options;
  options.max_period = 400;
  auto candidates = PeriodicTrends(options).Analyze(series);
  ASSERT_TRUE(candidates.ok());
  EXPECT_GT(PeriodicTrends::ConfidenceFor(*candidates, 25), 0.9);
}

TEST(PeriodicTrendsTest, ConfidenceForMissingPeriodIsZero) {
  EXPECT_DOUBLE_EQ(PeriodicTrends::ConfidenceFor({}, 10), 0.0);
}

TEST(PeriodicTrendsTest, RejectsTinySeries) {
  SymbolSeries series(Alphabet::Latin(2));
  series.Append(0);
  EXPECT_TRUE(
      PeriodicTrends().Analyze(series).status().IsInvalidArgument());
}

TEST(PeriodicTrendsTest, RespectsPeriodRange) {
  const SymbolSeries series = Perfect(500, 10, 6);
  PeriodicTrendsOptions options;
  options.exact = true;
  options.min_period = 5;
  options.max_period = 50;
  auto candidates = PeriodicTrends(options).Analyze(series);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 46u);
  for (const auto& candidate : *candidates) {
    EXPECT_GE(candidate.period, 5u);
    EXPECT_LE(candidate.period, 50u);
  }
}

}  // namespace
}  // namespace periodica
