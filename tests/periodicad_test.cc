// End-to-end tests for periodicad: spawn the real daemon binary, speak the
// wire protocol over its Unix socket, and assert the robustness contracts
// of docs/SERVING.md — exact overload accounting (no silent drops), upfront
// memory-estimate rejection, watchdog cancellation, and SIGTERM draining
// that checkpoints streaming sessions and exits 0.

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../tools/unix_socket.h"
#include "periodica/util/json.h"

namespace periodica::tools {
namespace {

using util::JsonValue;

std::string UniqueDir() {
  static std::atomic<int> counter{0};
  const std::string dir =
      std::filesystem::temp_directory_path() /
      ("periodicad_test_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir;
}

/// The daemon under test, as a child process. Kills with SIGKILL on
/// destruction unless the test already waited for it.
class DaemonProcess {
 public:
  explicit DaemonProcess(std::vector<std::string> extra_args) {
    dir_ = UniqueDir();
    socket_ = dir_ + "/d.sock";
    std::vector<std::string> args = {PERIODICAD_PATH, "--socket=" + socket_};
    for (std::string& arg : extra_args) args.push_back(std::move(arg));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      // Quiet the child's stderr chatter unless a test fails mysteriously.
      ::execv(PERIODICAD_PATH, argv.data());
      std::perror("execv");
      ::_exit(127);
    }
    // Wait for the socket to accept connections.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (ConnectUnix(socket_).ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "daemon did not come up on " << socket_;
  }

  ~DaemonProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  /// Sends SIGTERM and returns the daemon's exit code (-1 on abnormal
  /// death). Marks the process reaped.
  int TerminateAndWait() {
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  [[nodiscard]] const std::string& socket_path() const { return socket_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] pid_t pid() const { return pid_; }

 private:
  std::string dir_;
  std::string socket_;
  pid_t pid_ = -1;
};

/// One connection to the daemon; Call sends a request and reads the reply.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    Result<FdHandle> fd = ConnectUnix(socket_path);
    if (fd.ok()) fd_ = std::move(fd.value());
  }

  [[nodiscard]] bool connected() const { return fd_.valid(); }

  JsonValue Call(const std::string& method, JsonValue::Object params) {
    JsonValue::Object request;
    request["id"] = std::size_t{1};
    request["method"] = method;
    request["params"] = JsonValue(std::move(params));
    if (!SendLine(fd_.get(), JsonValue(std::move(request)).Dump()).ok()) {
      return JsonValue();
    }
    LineReader reader(fd_.get());
    Result<std::string> line = reader.Next();
    if (!line.ok()) return JsonValue();
    Result<JsonValue> response = JsonValue::Parse(line.value());
    return response.ok() ? response.value() : JsonValue();
  }

 private:
  FdHandle fd_;
};

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  return error == nullptr ? "" : error->GetString("code", "");
}

/// result.queue.<key> from a stats response, or `fallback` when any level
/// is missing (e.g. the call failed).
double QueueStat(const JsonValue& stats, const std::string& key,
                 double fallback) {
  const JsonValue* result = stats.Find("result");
  if (result == nullptr) return fallback;
  const JsonValue* queue = result->Find("queue");
  if (queue == nullptr) return fallback;
  return queue->GetNumber(key, fallback);
}

/// Polls `stats` on `client` until one mining job is on a worker.
void WaitForRunningJob(Client& client) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (QueueStat(client.Call("stats", {}), "running", 0.0) >= 1.0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "no job reached a worker in time";
}

std::string PeriodicSeries(std::size_t n, std::size_t period) {
  std::string series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(static_cast<char>('a' + (i % period) % 3));
  }
  return series;
}

TEST(PeriodicadTest, PingStatsAndMine) {
  DaemonProcess daemon({});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());

  const JsonValue pong = client.Call("ping", {});
  EXPECT_TRUE(pong.GetBool("ok", false)) << pong.Dump();

  JsonValue::Object params;
  params["series"] = PeriodicSeries(120, 3);
  params["threshold"] = 0.9;
  const JsonValue mined = client.Call("mine", params);
  ASSERT_TRUE(mined.GetBool("ok", false)) << mined.Dump();
  const JsonValue* result = mined.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->GetBool("partial", true));
  const JsonValue* summaries = result->Find("summaries");
  ASSERT_NE(summaries, nullptr);
  bool found_period_3 = false;
  for (const JsonValue& summary : summaries->as_array()) {
    if (summary.GetNumber("period", 0) == 3.0) found_period_3 = true;
  }
  EXPECT_TRUE(found_period_3) << mined.Dump();

  // The worker bumps `completed` just after the response is handed to the
  // connection thread, so poll briefly instead of asserting instantly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  double completed = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    const JsonValue stats = client.Call("stats", {});
    ASSERT_TRUE(stats.GetBool("ok", false));
    completed = QueueStat(stats, "completed", -1);
    if (completed >= 1.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(completed, 1.0);
}

TEST(PeriodicadTest, MalformedAndUnknownRequestsAreStructuredErrors) {
  DaemonProcess daemon({});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(ErrorCode(client.Call("no_such_method", {})), "INVALID_ARGUMENT");
  JsonValue::Object params;
  params["series"] = "abc!?$";
  EXPECT_EQ(ErrorCode(client.Call("mine", params)), "INVALID_ARGUMENT");
  // The connection survives garbage and keeps serving.
  EXPECT_TRUE(client.Call("ping", {}).GetBool("ok", false));
}

// The ISSUE's acceptance scenario: 1 worker, 2 queue slots, a 16-request
// burst while the worker is pinned. Every request must come back either
// accepted-and-completed or OVERLOADED-with-retry-hint; the sum accounts
// for all 16.
TEST(PeriodicadTest, OverloadBurstAccountsEveryRequest) {
  DaemonProcess daemon({"--workers=1", "--max_queue_depth=2"});
  ASSERT_TRUE(Client(daemon.socket_path()).connected());

  // Pin the worker from a dedicated connection (response arrives later).
  std::thread pin([&daemon] {
    Client client(daemon.socket_path());
    JsonValue::Object params;
    params["ms"] = std::size_t{3000};
    const JsonValue response = client.Call("sleep", params);
    EXPECT_TRUE(response.GetBool("ok", false));
  });
  // Wait until the sleep job occupies the worker.
  Client probe(daemon.socket_path());
  WaitForRunningJob(probe);

  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> burst;
  burst.reserve(16);
  for (int i = 0; i < 16; ++i) {
    burst.emplace_back([&daemon, &accepted, &rejected] {
      Client client(daemon.socket_path());
      JsonValue::Object params;
      params["ms"] = std::size_t{1};
      const JsonValue response = client.Call("sleep", params);
      if (response.GetBool("ok", false)) {
        accepted.fetch_add(1);
        return;
      }
      ASSERT_EQ(ErrorCode(response), "OVERLOADED") << response.Dump();
      const JsonValue* error = response.Find("error");
      EXPECT_GE(error->GetNumber("retry_after_ms", -1), 10.0);
      EXPECT_EQ(error->GetBool("draining", true), false);
      rejected.fetch_add(1);
    });
  }
  for (std::thread& thread : burst) thread.join();
  pin.join();

  EXPECT_EQ(accepted.load() + rejected.load(), 16) << "no silent drops";
  EXPECT_EQ(accepted.load(), 2) << "exactly the two queue slots";
  EXPECT_EQ(rejected.load(), 14);

  // All three accepted jobs (pin + 2 slots) have responded, but the worker
  // bumps `completed` just after handing each response over — poll briefly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  JsonValue stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = probe.Call("stats", {});
    if (QueueStat(stats, "completed", -1) >= 3.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(QueueStat(stats, "completed", -1), 3.0) << stats.Dump();
  EXPECT_EQ(QueueStat(stats, "rejected", -1), 14.0);
}

TEST(PeriodicadTest, OversizedRequestRejectedUpfrontWithEstimate) {
  DaemonProcess daemon({"--request_budget_bytes=20000"});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());
  JsonValue::Object params;
  params["series"] = PeriodicSeries(30000, 7);
  params["engine"] = "fft";
  const JsonValue response = client.Call("mine", params);
  ASSERT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(ErrorCode(response), "RESOURCE_EXHAUSTED");
  const std::string message =
      response.Find("error")->GetString("message", "");
  EXPECT_NE(message.find("estimated peak memory"), std::string::npos)
      << message;
  EXPECT_NE(message.find("indicators"), std::string::npos)
      << "estimate breakdown missing: " << message;
  // The daemon is fine afterwards.
  EXPECT_TRUE(client.Call("ping", {}).GetBool("ok", false));
}

TEST(PeriodicadTest, WatchdogCancelsWedgedJobs) {
  DaemonProcess daemon({"--wedge_timeout_ms=200", "--watchdog_interval_ms=50"});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());
  JsonValue::Object params;
  params["ms"] = std::size_t{30000};
  const auto start = std::chrono::steady_clock::now();
  const JsonValue response = client.Call("sleep", params);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  const JsonValue* result = response.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->GetBool("partial", false))
      << "watchdog cancellation must surface as a partial result";
  EXPECT_LT(elapsed.count(), 10000) << "the 30 s job must be cut short";

  const JsonValue stats = client.Call("stats", {});
  const JsonValue* stats_result = stats.Find("result");
  ASSERT_NE(stats_result, nullptr);
  EXPECT_GE(stats_result->GetNumber("watchdog_cancels", 0), 1.0);
}

TEST(PeriodicadTest, SigtermDrainsInFlightWorkAndExitsZero) {
  DaemonProcess daemon({"--workers=1"});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());

  std::atomic<bool> got_response{false};
  std::thread in_flight([&daemon, &got_response] {
    Client slow(daemon.socket_path());
    JsonValue::Object params;
    params["ms"] = std::size_t{800};
    const JsonValue response = slow.Call("sleep", params);
    EXPECT_TRUE(response.GetBool("ok", false)) << response.Dump();
    EXPECT_FALSE(response.Find("result")->GetBool("partial", true))
        << "drain must let the job finish, not cancel it";
    got_response.store(true);
  });
  // Make sure the job is on the worker, then TERM the daemon under it.
  WaitForRunningJob(client);
  EXPECT_EQ(daemon.TerminateAndWait(), 0) << "graceful drain exits 0";
  in_flight.join();
  EXPECT_TRUE(got_response.load())
      << "the in-flight response must be delivered before exit";
}

TEST(PeriodicadTest, StreamingSessionCheckpointsOnDrainAndResumes) {
  const std::string series = PeriodicSeries(600, 5);
  const std::string first_half = series.substr(0, 300);
  const std::string second_half = series.substr(300);

  JsonValue::Object open;
  open["session"] = "s1";
  open["max_period"] = std::size_t{32};
  open["alphabet_size"] = std::size_t{3};

  // Uninterrupted reference run.
  std::string reference;
  {
    DaemonProcess daemon({});
    Client client(daemon.socket_path());
    ASSERT_TRUE(client.Call("stream_open", open).GetBool("ok", false));
    JsonValue::Object feed;
    feed["session"] = "s1";
    feed["symbols"] = series;
    ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));
    JsonValue::Object detect;
    detect["session"] = "s1";
    detect["threshold"] = 0.5;
    const JsonValue detected = client.Call("stream_detect", detect);
    ASSERT_TRUE(detected.GetBool("ok", false)) << detected.Dump();
    reference = detected.Dump();
  }

  // Interrupted run: feed half, SIGTERM (drain checkpoints the session),
  // restart with the same checkpoint dir, resume, feed the rest.
  const std::string dir = UniqueDir();
  {
    DaemonProcess daemon({"--checkpoint_dir=" + dir});
    Client client(daemon.socket_path());
    ASSERT_TRUE(client.Call("stream_open", open).GetBool("ok", false));
    JsonValue::Object feed;
    feed["session"] = "s1";
    feed["symbols"] = first_half;
    ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));
    ASSERT_EQ(daemon.TerminateAndWait(), 0);
    ASSERT_TRUE(std::filesystem::exists(dir + "/s1.pchk"))
        << "drain must checkpoint the open session";
  }
  {
    DaemonProcess daemon({"--checkpoint_dir=" + dir});
    Client client(daemon.socket_path());
    JsonValue::Object resume;
    resume["session"] = "s1";
    resume["resume"] = true;
    const JsonValue reopened = client.Call("stream_open", resume);
    ASSERT_TRUE(reopened.GetBool("ok", false)) << reopened.Dump();
    EXPECT_EQ(reopened.Find("result")->GetNumber("size", 0), 300.0);
    JsonValue::Object feed;
    feed["session"] = "s1";
    feed["symbols"] = second_half;
    ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));
    JsonValue::Object detect;
    detect["session"] = "s1";
    detect["threshold"] = 0.5;
    const JsonValue detected = client.Call("stream_detect", detect);
    ASSERT_TRUE(detected.GetBool("ok", false));
    EXPECT_EQ(detected.Dump(), reference)
        << "resume through drain must be byte-identical to uninterrupted";
  }
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
}

// Regression: with --checkpoint_each_feed, a failed per-open checkpoint
// used to self-deadlock the daemon — the failure path called Close() while
// the checkpoint's Handle still held the session mutex, wedging the loop
// thread forever. The open must come back as an error, the daemon must
// stay responsive, and the half-open session must be gone.
TEST(PeriodicadTest, FailedOpenCheckpointRespondsAndClosesTheSession) {
  const std::string dir = UniqueDir();
  DaemonProcess daemon({"--checkpoint_dir=" + dir, "--checkpoint_each_feed",
                        "--faults=atomic_file/write:1"});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());

  JsonValue::Object open;
  open["session"] = "s1";
  open["max_period"] = std::size_t{16};
  open["alphabet_size"] = std::size_t{3};
  const JsonValue failed = client.Call("stream_open", open);
  EXPECT_FALSE(failed.GetBool("ok", true)) << failed.Dump();
  EXPECT_EQ(ErrorCode(failed), "IO_ERROR") << failed.Dump();

  // Deadlock would hang this ping (session bookkeeping runs on the loop
  // thread). The fault is consumed, so the retried open — same name, which
  // the failure path must have closed — now succeeds end to end.
  EXPECT_TRUE(client.Call("ping", {}).GetBool("ok", false));
  const JsonValue reopened = client.Call("stream_open", open);
  EXPECT_TRUE(reopened.GetBool("ok", false)) << reopened.Dump();

  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
}

// The event-loop acceptance criterion: the daemon's thread count is
// O(worker pool), not O(connections). With 1000 connections held open, the
// process may run the loop thread, the workers, the watchdog and a few
// runtime threads — nowhere near 1000.
TEST(PeriodicadTest, ThreadCountStaysFlatWithAThousandConnections) {
  DaemonProcess daemon({"--workers=2"});
  Client control(daemon.socket_path());
  ASSERT_TRUE(control.connected());

  std::vector<FdHandle> held;
  held.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    Result<FdHandle> fd = ConnectUnix(daemon.socket_path());
    for (int retry = 0; !fd.ok() && retry < 50; ++retry) {
      // The listen backlog can fill while the loop is busy accepting.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      fd = ConnectUnix(daemon.socket_path());
    }
    ASSERT_TRUE(fd.ok()) << "connection " << i << ": "
                         << fd.status().ToString();
    held.push_back(std::move(fd.value()));
  }

  // Wait until the loop has registered (nearly) all of them, then check the
  // kernel's thread count for the daemon process.
  double connections = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const JsonValue stats = control.Call("stats", {});
    const JsonValue* result = stats.Find("result");
    ASSERT_NE(result, nullptr) << stats.Dump();
    connections = result->GetNumber("connections", 0);
    if (connections >= 1001.0) break;  // 1000 held + the control client
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(connections, 1001.0);

  std::ifstream status("/proc/" + std::to_string(daemon.pid()) + "/status");
  ASSERT_TRUE(status.is_open());
  int threads = -1;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      threads = std::stoi(line.substr(8));
      break;
    }
  }
  ASSERT_GT(threads, 0);
  EXPECT_LE(threads, 8) << "thread count must be O(workers), got " << threads
                        << " with 1000 open connections";

  // The daemon still serves through the crowd.
  EXPECT_TRUE(control.Call("ping", {}).GetBool("ok", false));
}

// Tenant quotas travel the wire: past the per-tenant session cap the daemon
// answers QUOTA_EXCEEDED with a retry hint, other tenants are untouched,
// and the rejection is visible in per-tenant stats.
TEST(PeriodicadTest, TenantQuotaRejectsWithRetryHintAndShowsInStats) {
  DaemonProcess daemon(
      {"--max_sessions_per_tenant=2", "--quota_retry_after_ms=123"});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());

  auto open = [&](const std::string& tenant, const std::string& session) {
    JsonValue::Object params;
    params["tenant"] = tenant;
    params["session"] = session;
    params["max_period"] = std::size_t{16};
    params["alphabet_size"] = std::size_t{3};
    return client.Call("stream_open", params);
  };
  ASSERT_TRUE(open("acme", "s1").GetBool("ok", false));
  ASSERT_TRUE(open("acme", "s2").GetBool("ok", false));

  const JsonValue denied = open("acme", "s3");
  ASSERT_FALSE(denied.GetBool("ok", true)) << denied.Dump();
  EXPECT_EQ(ErrorCode(denied), "QUOTA_EXCEEDED");
  const JsonValue* error = denied.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetNumber("retry_after_ms", -1), 123.0);
  EXPECT_EQ(error->GetString("tenant", ""), "acme");

  // Another tenant (and the default tenant) are isolated from acme's cap.
  EXPECT_TRUE(open("beta", "s1").GetBool("ok", false));
  JsonValue::Object untenanted;
  untenanted["session"] = "s1";
  untenanted["max_period"] = std::size_t{16};
  untenanted["alphabet_size"] = std::size_t{3};
  EXPECT_TRUE(client.Call("stream_open", untenanted).GetBool("ok", false));

  // Same (tenant, session) key spaces are disjoint: acme@s1, beta@s1 and
  // default@s1 coexist; feeding one does not touch the others.
  JsonValue::Object feed;
  feed["tenant"] = "beta";
  feed["session"] = "s1";
  feed["symbols"] = "abcabc";
  ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));

  const JsonValue stats = client.Call("stats", {});
  const JsonValue* result = stats.Find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* tenants = result->Find("tenants");
  ASSERT_NE(tenants, nullptr) << stats.Dump();
  const JsonValue* acme = tenants->Find("acme");
  ASSERT_NE(acme, nullptr) << stats.Dump();
  EXPECT_EQ(acme->GetNumber("sessions", -1), 2.0);
  EXPECT_GE(acme->GetNumber("quota_rejections", -1), 1.0);
  const JsonValue* beta = tenants->Find("beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->GetNumber("quota_rejections", -1), 0.0);
  EXPECT_EQ(beta->GetNumber("feeds", -1), 1.0);
  EXPECT_EQ(beta->GetNumber("symbols", -1), 6.0);

  EXPECT_EQ(daemon.TerminateAndWait(), 0);
}

// Eviction end to end: a budgeted daemon under per-tenant memory pressure
// evicts cold sessions to checkpoints and thaws them on the next feed, with
// the counters visible in session_table stats.
TEST(PeriodicadTest, BudgetPressureEvictsAndThawsThroughTheWire) {
  const std::string dir = UniqueDir();
  // Room for roughly one ~100 KB session per tenant: the second open must
  // evict the first instead of failing.
  DaemonProcess daemon({"--checkpoint_dir=" + dir,
                        "--tenant_budget_bytes=150000"});
  Client client(daemon.socket_path());
  ASSERT_TRUE(client.connected());

  auto request = [&](const std::string& method, const std::string& session,
                     JsonValue::Object params) {
    params["tenant"] = "acme";
    params["session"] = session;
    return client.Call(method, std::move(params));
  };
  JsonValue::Object geometry;
  geometry["max_period"] = std::size_t{16};
  geometry["alphabet_size"] = std::size_t{3};
  ASSERT_TRUE(request("stream_open", "hot", geometry).GetBool("ok", false));
  JsonValue::Object feed;
  feed["symbols"] = "abcabcabcabc";
  ASSERT_TRUE(request("stream_feed", "hot", feed).GetBool("ok", false));

  const JsonValue second = request("stream_open", "cold", geometry);
  ASSERT_TRUE(second.GetBool("ok", false))
      << "eviction should make room, not reject: " << second.Dump();
  EXPECT_TRUE(std::filesystem::exists(dir + "/acme@hot.pchk"))
      << "the idle session must have been checkpointed out";

  // Feeding the evicted session thaws it transparently, same state.
  const JsonValue thawed = request("stream_feed", "hot", feed);
  ASSERT_TRUE(thawed.GetBool("ok", false)) << thawed.Dump();
  EXPECT_EQ(thawed.Find("result")->GetNumber("size", 0), 24.0);

  const JsonValue stats = client.Call("stats", {});
  const JsonValue* table = stats.Find("result")->Find("session_table");
  ASSERT_NE(table, nullptr) << stats.Dump();
  EXPECT_GE(table->GetNumber("evictions", 0), 1.0);
  EXPECT_GE(table->GetNumber("thaws", 0), 1.0);

  EXPECT_EQ(daemon.TerminateAndWait(), 0);
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
}

/// Runs the real periodica_client binary against `daemon` and returns its
/// exit code (-1 on abnormal death). Stdout is silenced — the tests assert
/// on exit codes, the shell contract scripts branch on.
int RunClient(const DaemonProcess& daemon,
              const std::vector<std::string>& extra_args) {
  std::vector<std::string> args = {PERIODICA_CLIENT_PATH,
                                   "--socket=" + daemon.socket_path()};
  for (const std::string& arg : extra_args) args.push_back(arg);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::freopen("/dev/null", "w", stdout);
    ::execv(PERIODICA_CLIENT_PATH, argv.data());
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// Satellite #1: the client retries structured OVERLOADED rejections with
// backoff. job_queue/enqueue:1 makes the daemon lose exactly the first
// admitted job (surfaced as OVERLOADED with a retry hint), so a client
// allowed one retry succeeds where a fail-fast client exits 4.
TEST(PeriodicadTest, ClientRetriesOverloadedRejectionsWithBackoff) {
  {
    DaemonProcess daemon({"--faults=job_queue/enqueue:1"});
    EXPECT_EQ(RunClient(daemon, {"--method=sleep", "--params={\"ms\":1}",
                                 "--max_retries=2"}),
              0)
        << "one retry must absorb the single injected enqueue fault";
  }
  {
    DaemonProcess daemon({"--faults=job_queue/enqueue:1"});
    EXPECT_EQ(RunClient(daemon, {"--method=sleep", "--params={\"ms\":1}"}),
              4)
        << "the default is fail-fast: surface the rejection as exit 4";
  }
}

// Tentpole serving path #1: a mine request that names its series is cached
// in the durable store and answered from it on repeat — including across a
// full daemon restart.
TEST(PeriodicadTest, MineResultCacheHitsRepeatQueriesAcrossRestart) {
  const std::string dir = UniqueDir();
  JsonValue::Object params;
  params["series"] = PeriodicSeries(120, 3);
  params["series_id"] = "sensor-7";
  params["threshold"] = 0.9;

  std::string first_result;
  {
    DaemonProcess daemon({"--store_dir=" + dir + "/store"});
    Client client(daemon.socket_path());
    ASSERT_TRUE(client.connected());
    const JsonValue first = client.Call("mine", params);
    ASSERT_TRUE(first.GetBool("ok", false)) << first.Dump();
    EXPECT_FALSE(first.Find("result")->GetBool("cached", false))
        << "first query must be computed, not served from the cache";
    first_result = first.Find("result")->Dump();

    const JsonValue second = client.Call("mine", params);
    ASSERT_TRUE(second.GetBool("ok", false)) << second.Dump();
    EXPECT_TRUE(second.Find("result")->GetBool("cached", false))
        << second.Dump();

    // A different config hashes to a different key — no false sharing.
    JsonValue::Object other = params;
    other["threshold"] = 0.5;
    const JsonValue recomputed = client.Call("mine", other);
    ASSERT_TRUE(recomputed.GetBool("ok", false));
    EXPECT_FALSE(recomputed.Find("result")->GetBool("cached", false));

    const JsonValue stats = client.Call("stats", {});
    const JsonValue* store = stats.Find("result")->Find("store");
    ASSERT_NE(store, nullptr) << stats.Dump();
    EXPECT_TRUE(store->GetBool("enabled", false));
    EXPECT_EQ(store->GetNumber("mine_cache_hits", -1), 1.0);
    EXPECT_EQ(store->GetNumber("mine_cache_misses", -1), 2.0);
    EXPECT_GE(store->GetNumber("wal_bytes", 0), 1.0);
    EXPECT_EQ(daemon.TerminateAndWait(), 0);
  }
  {
    // The cache is durable: the restarted daemon recovers it from the WAL
    // and serves the repeat query without recomputing.
    DaemonProcess daemon({"--store_dir=" + dir + "/store"});
    Client client(daemon.socket_path());
    ASSERT_TRUE(client.connected());
    const JsonValue cached = client.Call("mine", params);
    ASSERT_TRUE(cached.GetBool("ok", false)) << cached.Dump();
    EXPECT_TRUE(cached.Find("result")->GetBool("cached", false))
        << "the cache must survive a restart";
    JsonValue stripped = cached;
    stripped.mutable_object()["result"].mutable_object().erase("cached");
    EXPECT_EQ(stripped.Find("result")->Dump(), first_result)
        << "the cached answer must be byte-identical to the computed one";
  }
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
}

// Tentpole serving path #2: with --store_dir (and no --checkpoint_dir) the
// drain checkpoint goes through the KV store's WAL, and a session resumed
// after a full daemon restart detects byte-identically to an uninterrupted
// run.
TEST(PeriodicadTest, StoreBackedSessionsThawBitIdenticalAfterRestart) {
  const std::string series = PeriodicSeries(600, 5);
  const std::string first_half = series.substr(0, 300);
  const std::string second_half = series.substr(300);

  JsonValue::Object open;
  open["session"] = "s1";
  open["max_period"] = std::size_t{32};
  open["alphabet_size"] = std::size_t{3};

  std::string reference;
  {
    DaemonProcess daemon({});
    Client client(daemon.socket_path());
    ASSERT_TRUE(client.Call("stream_open", open).GetBool("ok", false));
    JsonValue::Object feed;
    feed["session"] = "s1";
    feed["symbols"] = series;
    ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));
    JsonValue::Object detect;
    detect["session"] = "s1";
    detect["threshold"] = 0.5;
    const JsonValue detected = client.Call("stream_detect", detect);
    ASSERT_TRUE(detected.GetBool("ok", false)) << detected.Dump();
    reference = detected.Dump();
  }

  const std::string dir = UniqueDir();
  {
    DaemonProcess daemon({"--store_dir=" + dir + "/store"});
    Client client(daemon.socket_path());
    ASSERT_TRUE(client.Call("stream_open", open).GetBool("ok", false));
    JsonValue::Object feed;
    feed["session"] = "s1";
    feed["symbols"] = first_half;
    ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));
    ASSERT_EQ(daemon.TerminateAndWait(), 0);
    // Durability went through the store, not loose checkpoint files.
    ASSERT_TRUE(std::filesystem::exists(dir + "/store/wal.log"));
  }
  {
    DaemonProcess daemon({"--store_dir=" + dir + "/store"});
    Client client(daemon.socket_path());
    JsonValue::Object resume;
    resume["session"] = "s1";
    resume["resume"] = true;
    const JsonValue reopened = client.Call("stream_open", resume);
    ASSERT_TRUE(reopened.GetBool("ok", false)) << reopened.Dump();
    EXPECT_EQ(reopened.Find("result")->GetNumber("size", 0), 300.0);
    JsonValue::Object feed;
    feed["session"] = "s1";
    feed["symbols"] = second_half;
    ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));
    JsonValue::Object detect;
    detect["session"] = "s1";
    detect["threshold"] = 0.5;
    const JsonValue detected = client.Call("stream_detect", detect);
    ASSERT_TRUE(detected.GetBool("ok", false));
    EXPECT_EQ(detected.Dump(), reference)
        << "store-backed resume must be byte-identical to uninterrupted";

    // The recovery that made this possible is visible in stats.
    const JsonValue stats = client.Call("stats", {});
    const JsonValue* store = stats.Find("result")->Find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_GE(store->GetNumber("recoveries", 0), 1.0);
    EXPECT_EQ(store->GetNumber("scrub_errors", -1), 0.0);
    // Satellite #2: the eviction-pressure histogram rides along in stats.
    const JsonValue* table = stats.Find("result")->Find("session_table");
    ASSERT_NE(table, nullptr);
    const JsonValue* buckets = table->Find("idle_age_buckets");
    ASSERT_NE(buckets, nullptr) << stats.Dump();
    ASSERT_EQ(buckets->as_array().size(), 5u);
    double total = 0;
    for (const JsonValue& bucket : buckets->as_array()) {
      total += bucket.as_number();
    }
    EXPECT_EQ(total, 1.0) << "one resident idle session: " << stats.Dump();
  }
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
}

TEST(PeriodicadTest, FaultInjectedReadsDropConnectionsNotTheDaemon) {
  // Every read fails: each connection is dropped before serving a request,
  // exactly as if the peer vanished mid-line. The daemon itself must keep
  // accepting, survive the storm, and still drain cleanly on SIGTERM.
  DaemonProcess daemon({"--faults=server/read:1:repeat"});
  for (int i = 0; i < 5; ++i) {
    Client client(daemon.socket_path());
    ASSERT_TRUE(client.connected()) << "accept must keep working";
    EXPECT_TRUE(client.Call("ping", {}).is_null())
        << "the injected read failure drops the connection";
  }
  EXPECT_EQ(daemon.TerminateAndWait(), 0);
}

}  // namespace
}  // namespace periodica::tools
