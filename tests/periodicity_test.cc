#include "periodica/core/periodicity.h"

#include <gtest/gtest.h>

#include "periodica/core/detail.h"

namespace periodica {
namespace {

SymbolPeriodicity Entry(std::size_t period, std::size_t position,
                        SymbolId symbol, std::uint64_t f2,
                        std::uint64_t pairs) {
  return SymbolPeriodicity{period, position, symbol, f2, pairs,
                           static_cast<double>(f2) /
                               static_cast<double>(pairs)};
}

TEST(PeriodicityTableTest, PeriodsAreSortedAndUnique) {
  PeriodicityTable table;
  table.AddSummary(PeriodSummary{7, 1.0, 1, 0, 0, false});
  table.AddSummary(PeriodSummary{3, 0.5, 2, 1, 1, false});
  table.AddSummary(PeriodSummary{7, 0.9, 1, 0, 2, false});
  EXPECT_EQ(table.Periods(), (std::vector<std::size_t>{3, 7}));
}

TEST(PeriodicityTableTest, FindPeriodAndConfidence) {
  PeriodicityTable table;
  table.AddSummary(PeriodSummary{5, 0.8, 3, 2, 1, false});
  ASSERT_NE(table.FindPeriod(5), nullptr);
  EXPECT_EQ(table.FindPeriod(5)->num_periodicities, 3u);
  EXPECT_EQ(table.FindPeriod(6), nullptr);
  EXPECT_DOUBLE_EQ(table.PeriodConfidence(5), 0.8);
  EXPECT_DOUBLE_EQ(table.PeriodConfidence(99), 0.0);
}

TEST(PeriodicityTableTest, EntriesForPeriodSortedByPositionThenSymbol) {
  PeriodicityTable table;
  table.AddEntry(Entry(4, 2, 1, 1, 2));
  table.AddEntry(Entry(4, 0, 2, 1, 2));
  table.AddEntry(Entry(4, 0, 0, 1, 2));
  table.AddEntry(Entry(5, 0, 0, 1, 2));  // other period excluded
  const auto entries = table.EntriesForPeriod(4);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].position, 0u);
  EXPECT_EQ(entries[0].symbol, 0);
  EXPECT_EQ(entries[1].position, 0u);
  EXPECT_EQ(entries[1].symbol, 2);
  EXPECT_EQ(entries[2].position, 2u);
}

TEST(PeriodicityTableTest, SymbolSetsDeduplicates) {
  PeriodicityTable table;
  table.AddEntry(Entry(3, 1, 2, 1, 2));
  table.AddEntry(Entry(3, 1, 2, 1, 2));
  table.AddEntry(Entry(3, 1, 0, 1, 2));
  const auto sets = table.SymbolSets(3);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_TRUE(sets[0].empty());
  EXPECT_EQ(sets[1], (std::vector<SymbolId>{0, 2}));
  EXPECT_TRUE(sets[2].empty());
}

TEST(PeriodicityTableTest, SortCanonicalOrdersEntries) {
  PeriodicityTable table;
  table.AddEntry(Entry(5, 1, 0, 1, 2));
  table.AddEntry(Entry(3, 2, 1, 1, 2));
  table.AddEntry(Entry(3, 0, 1, 1, 2));
  table.SortCanonical();
  EXPECT_EQ(table.entries()[0].period, 3u);
  EXPECT_EQ(table.entries()[0].position, 0u);
  EXPECT_EQ(table.entries()[1].position, 2u);
  EXPECT_EQ(table.entries()[2].period, 5u);
}

// --- internal::EmitPeriod / MinPairCount -------------------------------

TEST(DetailTest, MinPairCountFormula) {
  // n=10, p=3: pairs at the last phase l=2 is ceil(8/3)-1 = 2.
  EXPECT_EQ(internal::MinPairCount(10, 3), 2u);
  // Pairs of 0 clamp to 1 (a single pair can still reach confidence 1).
  EXPECT_EQ(internal::MinPairCount(10, 9), 1u);
  EXPECT_EQ(internal::MinPairCount(10, 12), 1u);
  EXPECT_EQ(internal::MinPairCount(4, 1), 3u);  // ceil(4/1)-1 with l=0
}

TEST(DetailTest, EmitPeriodAppliesThreshold) {
  MinerOptions options;
  options.threshold = 0.6;
  PeriodicityTable table;
  const internal::PhaseCount counts[] = {
      {0, 0, 3},  // pairs(10,3,0)=3 -> confidence 1.0
      {1, 1, 1},  // pairs(10,3,1)=2 -> confidence 0.5 (below threshold)
  };
  internal::EmitPeriod(10, 3, counts, options, &table);
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_EQ(table.entries()[0].symbol, 0);
  ASSERT_EQ(table.summaries().size(), 1u);
  EXPECT_EQ(table.summaries()[0].num_periodicities, 1u);
  EXPECT_DOUBLE_EQ(table.summaries()[0].best_confidence, 1.0);
}

TEST(DetailTest, EmitPeriodNoSummaryWhenNothingPasses) {
  MinerOptions options;
  options.threshold = 0.9;
  PeriodicityTable table;
  const internal::PhaseCount counts[] = {{0, 0, 1}};
  internal::EmitPeriod(10, 3, counts, options, &table);
  EXPECT_TRUE(table.entries().empty());
  EXPECT_TRUE(table.summaries().empty());
}

TEST(DetailTest, EmitPeriodHonorsMinPairs) {
  MinerOptions options;
  options.threshold = 0.5;
  options.min_pairs = 3;
  PeriodicityTable table;
  const internal::PhaseCount counts[] = {
      {0, 0, 3},  // pairs 3 >= min_pairs: kept
      {0, 1, 2},  // pairs(10,3,1) = 2 < min_pairs: dropped despite conf 1.0
  };
  internal::EmitPeriod(10, 3, counts, options, &table);
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_EQ(table.entries()[0].position, 0u);
}

TEST(DetailTest, EmitPeriodPositionsOffKeepsSummariesOnly) {
  MinerOptions options;
  options.threshold = 0.5;
  options.positions = false;
  PeriodicityTable table;
  const internal::PhaseCount counts[] = {{0, 0, 3}};
  internal::EmitPeriod(10, 3, counts, options, &table);
  EXPECT_TRUE(table.entries().empty());
  EXPECT_EQ(table.summaries().size(), 1u);
}

}  // namespace
}  // namespace periodica
