#include "periodica/core/report.h"

#include <sstream>

#include <gtest/gtest.h>

#include "periodica/core/miner.h"

namespace periodica {
namespace {

MiningResult MineExample() {
  auto series = SymbolSeries::FromString("abcabbabcb");
  EXPECT_TRUE(series.ok());
  MinerOptions options;
  options.threshold = 0.5;
  options.mine_patterns = true;
  auto result = ObscureMiner(options).Mine(*series);
  EXPECT_TRUE(result.ok());
  return std::move(result).ValueOrDie();
}

TEST(ReportTest, TextFormatContainsAllSections) {
  const MiningResult result = MineExample();
  std::ostringstream os;
  ASSERT_TRUE(RenderMiningResult(result, Alphabet::Latin(3), ReportOptions(),
                                 os)
                  .ok());
  const std::string out = os.str();
  EXPECT_NE(out.find("# periods"), std::string::npos);
  EXPECT_NE(out.find("# symbol periodicities"), std::string::npos);
  EXPECT_NE(out.find("# patterns"), std::string::npos);
  EXPECT_NE(out.find("ab*"), std::string::npos);
  EXPECT_NE(out.find("0.667"), std::string::npos);  // the 2/3 confidence
}

TEST(ReportTest, CsvFormatIsParseable) {
  const MiningResult result = MineExample();
  ReportOptions options;
  options.format = ReportFormat::kCsv;
  std::ostringstream os;
  ASSERT_TRUE(
      RenderMiningResult(result, Alphabet::Latin(3), options, os).ok());
  const std::string out = os.str();
  EXPECT_NE(out.find("period,confidence,periodicities"), std::string::npos);
  EXPECT_NE(out.find("period,position,symbol,f2,pairs,confidence"),
            std::string::npos);
  EXPECT_NE(out.find("pattern,period,fixed,count,support"),
            std::string::npos);
  // No alignment padding in CSV mode.
  EXPECT_EQ(out.find(" | "), std::string::npos);
}

TEST(ReportTest, SectionTogglesWork) {
  const MiningResult result = MineExample();
  ReportOptions options;
  options.include_entries = false;
  options.include_patterns = false;
  std::ostringstream os;
  ASSERT_TRUE(
      RenderMiningResult(result, Alphabet::Latin(3), options, os).ok());
  const std::string out = os.str();
  EXPECT_NE(out.find("# periods"), std::string::npos);
  EXPECT_EQ(out.find("# symbol periodicities"), std::string::npos);
  EXPECT_EQ(out.find("# patterns"), std::string::npos);
}

TEST(ReportTest, MaxRowsCapsOutput) {
  const MiningResult result = MineExample();
  ReportOptions options;
  options.format = ReportFormat::kCsv;
  options.max_rows = 1;
  options.include_summaries = false;
  options.include_patterns = false;
  std::ostringstream os;
  ASSERT_TRUE(
      RenderMiningResult(result, Alphabet::Latin(3), options, os).ok());
  // Header + exactly one data row + blank line.
  std::size_t lines = 0;
  for (const char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);  // section title, header, 1 row, trailing blank
}

TEST(ReportTest, RejectsMismatchedAlphabet) {
  const MiningResult result = MineExample();
  std::ostringstream os;
  EXPECT_TRUE(RenderMiningResult(result, Alphabet::Latin(1), ReportOptions(),
                                 os)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace periodica
