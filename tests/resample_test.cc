#include "periodica/series/resample.h"

#include <gtest/gtest.h>

#include "periodica/gen/domain.h"

namespace periodica {
namespace {

TEST(AggregateValuesTest, MeanSumMinMaxLast) {
  const std::vector<double> values = {1, 2, 3, 4, 5, 6, 7};  // tail 7 dropped
  auto mean = AggregateValues(values, 3, ValueAggregate::kMean);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(*mean, (std::vector<double>{2, 5}));
  auto sum = AggregateValues(values, 3, ValueAggregate::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, (std::vector<double>{6, 15}));
  auto min = AggregateValues(values, 3, ValueAggregate::kMin);
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(*min, (std::vector<double>{1, 4}));
  auto max = AggregateValues(values, 3, ValueAggregate::kMax);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(*max, (std::vector<double>{3, 6}));
  auto last = AggregateValues(values, 3, ValueAggregate::kLast);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, (std::vector<double>{3, 6}));
}

TEST(AggregateValuesTest, FactorOneIsIdentity) {
  const std::vector<double> values = {1.5, -2.0};
  auto out = AggregateValues(values, 1, ValueAggregate::kMean);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, values);
}

TEST(AggregateValuesTest, FactorZeroRejected) {
  EXPECT_TRUE(AggregateValues(std::vector<double>{1.0}, 0,
                              ValueAggregate::kMean)
                  .status()
                  .IsInvalidArgument());
}

TEST(AggregateValuesTest, FactorLargerThanInputYieldsEmpty) {
  const std::vector<double> values = {1, 2};
  auto out = AggregateValues(values, 5, ValueAggregate::kSum);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(DownsampleTest, MajorityAndTieBreak) {
  auto series = SymbolSeries::FromString("aabbbbcaab");  // tail 'b' dropped
  ASSERT_TRUE(series.ok());
  auto majority = DownsampleSeries(*series, 3, SymbolAggregate::kMajority);
  ASSERT_TRUE(majority.ok());
  // Groups: aab -> a (tie a:2? a:2 b:1 -> a), bbb -> b, caa -> a.
  EXPECT_EQ(majority->ToString(), "aba");
}

TEST(DownsampleTest, FirstAndLast) {
  auto series = SymbolSeries::FromString("abcdef");
  ASSERT_TRUE(series.ok());
  auto first = DownsampleSeries(*series, 2, SymbolAggregate::kFirst);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->ToString(), "ace");
  auto last = DownsampleSeries(*series, 2, SymbolAggregate::kLast);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->ToString(), "bdf");
}

TEST(DownsampleTest, PreservesAlphabet) {
  auto series = SymbolSeries::FromString("abcabc");
  ASSERT_TRUE(series.ok());
  auto down = DownsampleSeries(*series, 3, SymbolAggregate::kMajority);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->alphabet(), series->alphabet());
}

TEST(DownsampleTest, PeriodRescalesAcrossResolutions) {
  // Hourly retail stream: period 168 (weekly) at hourly resolution becomes
  // period 7 at daily resolution.
  RetailTransactionSimulator::Options options;
  options.weeks = 8;
  auto hourly = RetailTransactionSimulator(options).GenerateSeries();
  ASSERT_TRUE(hourly.ok());
  auto daily = DownsampleSeries(*hourly, 24, SymbolAggregate::kMajority);
  ASSERT_TRUE(daily.ok());
  EXPECT_EQ(daily->size(), 8u * 7);
  // The weekend shape survives aggregation: some symbol is periodic at 7.
  double best = 0.0;
  for (SymbolId s = 0; s < 5; ++s) {
    for (std::size_t l = 0; l < 7; ++l) {
      best = std::max(best, PeriodicityConfidence(*daily, s, 7, l));
    }
  }
  EXPECT_GT(best, 0.7);
}

}  // namespace
}  // namespace periodica
