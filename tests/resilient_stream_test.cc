#include "periodica/series/resilient_stream.h"

#include <chrono>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "periodica/series/stream.h"
#include "periodica/util/fault_injector.h"
#include "periodica/util/logging.h"

namespace periodica {
namespace {

SymbolSeries MakeSeries(const std::string& text) {
  auto series = SymbolSeries::FromString(text);
  PERIODICA_CHECK(series.ok());
  return *std::move(series);
}

std::vector<SymbolId> Drain(SeriesStream* stream) {
  std::vector<SymbolId> out;
  while (const auto symbol = stream->Next()) out.push_back(*symbol);
  return out;
}

/// A source that emits a scripted sequence of symbols, out-of-alphabet ids
/// and transient failures.
class ScriptedStream : public SeriesStream {
 public:
  struct Step {
    std::optional<SymbolId> symbol;  // nullopt = fail with `status`
    Status status = Status::OK();
  };

  ScriptedStream(Alphabet alphabet, std::vector<Step> steps)
      : alphabet_(std::move(alphabet)), steps_(std::move(steps)) {}

  [[nodiscard]] const Alphabet& alphabet() const override {
    return alphabet_;
  }

  std::optional<SymbolId> Next() override {
    if (cursor_ >= steps_.size()) {
      status_ = Status::OK();
      return std::nullopt;
    }
    const Step& step = steps_[cursor_++];
    status_ = step.status;
    return step.symbol;
  }

  [[nodiscard]] Status status() const override { return status_; }

 private:
  Alphabet alphabet_;
  std::vector<Step> steps_;
  std::size_t cursor_ = 0;
  Status status_;
};

TEST(ResilientStreamTest, PassesCleanStreamThrough) {
  const SymbolSeries series = MakeSeries("abcabc");
  VectorStream inner(series);
  ResilientStream stream(&inner, {});
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0, 1, 2, 0, 1, 2}));
  EXPECT_TRUE(stream.status().ok());
  EXPECT_EQ(stream.position(), 6u);
  EXPECT_EQ(stream.retries(), 0u);
}

TEST(ResilientStreamTest, RetriesTransientErrorsAndRecovers) {
  const Alphabet alphabet = Alphabet::Latin(2);
  ScriptedStream inner(alphabet,
                       {{SymbolId{0}},
                        {std::nullopt, Status::IOError("hiccup")},
                        {SymbolId{1}},
                        {SymbolId{0}}});
  ResilientStream::Options options;
  options.max_retries = 3;
  ResilientStream stream(&inner, options);
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0, 1, 0}));
  EXPECT_TRUE(stream.status().ok()) << stream.status();
  EXPECT_EQ(stream.retries(), 1u);
}

TEST(ResilientStreamTest, ExhaustedRetriesFailWithPosition) {
  const Alphabet alphabet = Alphabet::Latin(2);
  std::vector<ScriptedStream::Step> steps = {{SymbolId{0}}, {SymbolId{1}}};
  for (int i = 0; i < 5; ++i) {
    steps.push_back({std::nullopt, Status::IOError("source down")});
  }
  ScriptedStream inner(alphabet, steps);
  ResilientStream::Options options;
  options.max_retries = 2;
  ResilientStream stream(&inner, options);
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0, 1}));
  const Status status = stream.status();
  EXPECT_TRUE(status.IsIOError());
  EXPECT_NE(status.message().find("position 2"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("source down"), std::string::npos);
  EXPECT_EQ(stream.retries(), 2u);
}

TEST(ResilientStreamTest, NonTransientErrorFailsFast) {
  const Alphabet alphabet = Alphabet::Latin(2);
  ScriptedStream inner(
      alphabet,
      {{SymbolId{1}}, {std::nullopt, Status::InvalidArgument("corrupt")}});
  ResilientStream::Options options;
  options.max_retries = 10;
  ResilientStream stream(&inner, options);
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{1}));
  EXPECT_TRUE(stream.status().IsInvalidArgument());
  EXPECT_EQ(stream.retries(), 0u);  // malformed input is not retried
}

TEST(ResilientStreamTest, BackoffDoublesPerAttempt) {
  const Alphabet alphabet = Alphabet::Latin(2);
  std::vector<ScriptedStream::Step> steps;
  for (int i = 0; i < 4; ++i) {
    steps.push_back({std::nullopt, Status::IOError("down")});
  }
  ScriptedStream inner(alphabet, steps);
  std::vector<std::chrono::milliseconds> sleeps;
  ResilientStream::Options options;
  options.max_retries = 3;
  options.backoff_base = std::chrono::milliseconds(10);
  options.sleep_fn = [&sleeps](std::chrono::milliseconds delay) {
    sleeps.push_back(delay);
  };
  ResilientStream stream(&inner, options);
  EXPECT_EQ(stream.Next(), std::nullopt);
  EXPECT_TRUE(stream.status().IsIOError());
  EXPECT_EQ(sleeps, (std::vector<std::chrono::milliseconds>{
                        std::chrono::milliseconds(10),
                        std::chrono::milliseconds(20),
                        std::chrono::milliseconds(40)}));
}

TEST(ResilientStreamTest, ErrorPolicyRejectsOutOfAlphabetWithPosition) {
  const Alphabet alphabet = Alphabet::Latin(2);
  ScriptedStream inner(alphabet, {{SymbolId{0}}, {SymbolId{7}}});
  ResilientStream stream(&inner, {});
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0}));
  const Status status = stream.status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("position 1"), std::string::npos)
      << status;
}

TEST(ResilientStreamTest, SkipPolicyDropsOutOfAlphabet) {
  const Alphabet alphabet = Alphabet::Latin(2);
  ScriptedStream inner(
      alphabet, {{SymbolId{0}}, {SymbolId{7}}, {SymbolId{1}}, {SymbolId{9}}});
  ResilientStream::Options options;
  options.bad_symbol_policy = ResilientStream::BadSymbolPolicy::kSkip;
  ResilientStream stream(&inner, options);
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0, 1}));
  EXPECT_TRUE(stream.status().ok());
  EXPECT_EQ(stream.skipped(), 2u);
  EXPECT_EQ(stream.position(), 2u);   // delivered
  EXPECT_EQ(stream.consumed(), 4u);   // pulled from the source
}

TEST(ResilientStreamTest, RemapPolicySubstitutes) {
  const Alphabet alphabet = Alphabet::Latin(3);
  ScriptedStream inner(alphabet,
                       {{SymbolId{0}}, {SymbolId{200}}, {SymbolId{1}}});
  ResilientStream::Options options;
  options.bad_symbol_policy = ResilientStream::BadSymbolPolicy::kRemap;
  options.remap_symbol = 2;
  ResilientStream stream(&inner, options);
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0, 2, 1}));
  EXPECT_TRUE(stream.status().ok());
  EXPECT_EQ(stream.remapped(), 1u);
}

TEST(ResilientStreamTest, InjectedFaultSiteSimulatesFlakySource) {
  const SymbolSeries series = MakeSeries("ababab");
  VectorStream inner(series);
  // The 3rd pull fails once; the retry must resume without losing a symbol.
  util::ScopedFault fault("resilient_stream/next",
                          Status::IOError("injected flake"),
                          /*fire_on_nth=*/3);
  ResilientStream::Options options;
  options.max_retries = 1;
  ResilientStream stream(&inner, options);
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0, 1, 0, 1, 0, 1}));
  EXPECT_TRUE(stream.status().ok()) << stream.status();
  EXPECT_EQ(stream.retries(), 1u);
}

TEST(ResilientStreamTest, InjectedPermanentFaultEndsStream) {
  const SymbolSeries series = MakeSeries("ababab");
  VectorStream inner(series);
  util::ScopedFault fault("resilient_stream/next",
                          Status::IOError("injected outage"),
                          /*fire_on_nth=*/2, /*repeat=*/true);
  ResilientStream::Options options;
  options.max_retries = 2;
  ResilientStream stream(&inner, options);
  EXPECT_EQ(Drain(&stream), (std::vector<SymbolId>{0}));
  EXPECT_TRUE(stream.status().IsIOError());
  EXPECT_NE(stream.status().message().find("after 2 retries"),
            std::string::npos)
      << stream.status();
}

TEST(ResilientStreamTest, StatusStaysFailedAfterEnd) {
  const Alphabet alphabet = Alphabet::Latin(2);
  ScriptedStream inner(alphabet,
                       {{std::nullopt, Status::InvalidArgument("corrupt")}});
  ResilientStream stream(&inner, {});
  EXPECT_EQ(stream.Next(), std::nullopt);
  EXPECT_EQ(stream.Next(), std::nullopt);  // stays ended
  EXPECT_TRUE(stream.status().IsInvalidArgument());
}

}  // namespace
}  // namespace periodica
