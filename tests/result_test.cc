#include "periodica/util/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace periodica {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nothing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.status().message(), "nothing");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).ValueOrDie();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> result(std::vector<int>{1, 2});
  result->push_back(3);
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(ResultTest, CopyPreservesState) {
  Result<int> value(5);
  Result<int> value_copy = value;
  EXPECT_TRUE(value_copy.ok());
  EXPECT_EQ(*value_copy, 5);

  Result<int> error(Status::Internal("boom"));
  Result<int> error_copy = error;
  EXPECT_FALSE(error_copy.ok());
  EXPECT_TRUE(error_copy.status().IsInternal());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH({ (void)result.value(); }, "Result::value");
}

Result<int> ParsePositive(int raw) {
  if (raw <= 0) return Status::InvalidArgument("must be positive");
  return raw;
}

Result<int> Doubled(int raw) {
  PERIODICA_ASSIGN_OR_RETURN(const int parsed, ParsePositive(raw));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> result = Doubled(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> result = Doubled(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace periodica
