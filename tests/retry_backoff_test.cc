// Tests for the shared retry backoff policy (tools/retry_backoff.h), the
// periodica_client retry/backoff satellite: deterministic-RNG checks that
// the ±25% jitter stays inside its bounds, the --max_backoff_ms cap applies
// pre-jitter, and a server retry_after_ms hint takes precedence over the
// exponential schedule.

#include "../tools/retry_backoff.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "periodica/util/rng.h"

namespace periodica::tools {
namespace {

TEST(RetryBackoffTest, ExponentialScheduleWithJitterBounds) {
  Rng rng(42);
  for (std::int64_t attempt = 0; attempt < 6; ++attempt) {
    const std::int64_t base = 100 * (std::int64_t{1} << attempt);
    for (int trial = 0; trial < 200; ++trial) {
      const std::int64_t backoff =
          NextBackoffMs(attempt, /*retry_after_ms=*/0,
                        /*max_backoff_ms=*/1 << 20, /*base_ms=*/100, &rng);
      // ±25% jitter around the exponential value, inclusive.
      EXPECT_GE(backoff, base - base / 4) << "attempt " << attempt;
      EXPECT_LE(backoff, base + base / 4) << "attempt " << attempt;
    }
  }
}

TEST(RetryBackoffTest, JitterActuallyVaries) {
  Rng rng(7);
  bool saw_below = false;
  bool saw_above = false;
  for (int trial = 0; trial < 500; ++trial) {
    const std::int64_t backoff = NextBackoffMs(
        /*attempt=*/3, /*retry_after_ms=*/0, /*max_backoff_ms=*/1 << 20,
        /*base_ms=*/100, &rng);
    if (backoff < 800) saw_below = true;
    if (backoff > 800) saw_above = true;
  }
  EXPECT_TRUE(saw_below);
  EXPECT_TRUE(saw_above);
}

TEST(RetryBackoffTest, CapAppliesBeforeJitter) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const std::int64_t backoff = NextBackoffMs(
        /*attempt=*/10, /*retry_after_ms=*/0, /*max_backoff_ms=*/2000,
        /*base_ms=*/100, &rng);
    // The cap bounds the pre-jitter value, so the jittered result may
    // exceed it by at most 25%.
    EXPECT_GE(backoff, 1500);
    EXPECT_LE(backoff, 2500);
  }
}

TEST(RetryBackoffTest, ServerHintTakesPrecedence) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    // Attempt 10 would schedule 100 * 2^10 ms; the 400ms hint must win.
    const std::int64_t backoff = NextBackoffMs(
        /*attempt=*/10, /*retry_after_ms=*/400, /*max_backoff_ms=*/1 << 20,
        /*base_ms=*/100, &rng);
    EXPECT_GE(backoff, 300);
    EXPECT_LE(backoff, 500);
  }
}

TEST(RetryBackoffTest, HintIsAlsoCapped) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t backoff = NextBackoffMs(
        /*attempt=*/0, /*retry_after_ms=*/60000, /*max_backoff_ms=*/1000,
        /*base_ms=*/100, &rng);
    EXPECT_LE(backoff, 1250);  // cap + 25% jitter headroom
    EXPECT_GE(backoff, 750);
  }
}

TEST(RetryBackoffTest, NeverNegativeAndShiftSaturates) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    // A huge attempt number must not overflow the shift (saturates at 20).
    const std::int64_t backoff = NextBackoffMs(
        /*attempt=*/1000, /*retry_after_ms=*/0, /*max_backoff_ms=*/500,
        /*base_ms=*/100, &rng);
    EXPECT_GE(backoff, 0);
    EXPECT_LE(backoff, 625);
  }
  // Negative attempts clamp to the first step instead of misbehaving.
  const std::int64_t first = NextBackoffMs(
      /*attempt=*/-5, /*retry_after_ms=*/0, /*max_backoff_ms=*/10000,
      /*base_ms=*/100, &rng);
  EXPECT_GE(first, 75);
  EXPECT_LE(first, 125);
}

TEST(RetryBackoffTest, DeterministicForAGivenSeed) {
  Rng rng_a(1234);
  Rng rng_b(1234);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_EQ(NextBackoffMs(trial % 8, 0, 5000, 100, &rng_a),
              NextBackoffMs(trial % 8, 0, 5000, 100, &rng_b));
  }
}

}  // namespace
}  // namespace periodica::tools
