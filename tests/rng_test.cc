#include "periodica/util/rng.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace periodica {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntBoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(1), 0u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.UniformInt(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int count : histogram) {
    EXPECT_NEAR(count, expected, 5 * std::sqrt(expected));
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t draw = rng.UniformRange(-3, 3);
    EXPECT_GE(draw, -3);
    EXPECT_LE(draw, 3);
    saw_lo |= draw == -3;
    saw_hi |= draw == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double draw = rng.UniformDouble();
    ASSERT_GE(draw, 0.0);
    ASSERT_LT(draw, 1.0);
    sum += draw;
  }
  EXPECT_NEAR(sum / 50000, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(19);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double draw = rng.Gaussian();
    sum += draw;
    sum_sq += draw * draw;
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / 50000, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace periodica
