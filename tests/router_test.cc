// End-to-end tests for periodica_router: fork two real periodicad shards
// serving TCP, put the router in front of them, and assert the multi-node
// contracts of docs/SERVING.md — request forwarding, heartbeat-driven
// down-detection, live session migration with byte-identical stream_detect
// output, and router-origin OVERLOADED when no healthy shard exists.

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../tools/unix_socket.h"
#include "periodica/serve/shard_map.h"
#include "periodica/store/kv_store.h"
#include "periodica/util/json.h"

namespace periodica::tools {
namespace {

using util::JsonValue;

std::string UniqueDir() {
  static std::atomic<int> counter{0};
  const std::string dir =
      std::filesystem::temp_directory_path() /
      ("router_test_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir;
}

/// Forks `binary` with `args`, redirecting the child's stderr to
/// `stderr_path` so tests can scrape machine-readable startup lines.
pid_t SpawnWithStderr(const char* binary, std::vector<std::string> args,
                      const std::string& stderr_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::FILE* log = std::fopen(stderr_path.c_str(), "w");
    if (log != nullptr) {
      ::dup2(::fileno(log), 2);
      std::setvbuf(stderr, nullptr, _IONBF, 0);
    }
    ::execv(binary, argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

/// A periodicad shard serving both its Unix socket and an ephemeral TCP
/// port, scraped from the daemon's "tcp listening" stderr line.
class ShardProcess {
 public:
  explicit ShardProcess(std::vector<std::string> extra_args) {
    dir_ = UniqueDir();
    socket_ = dir_ + "/d.sock";
    std::vector<std::string> args = {PERIODICAD_PATH, "--socket=" + socket_,
                                     "--tcp_port=0"};
    for (std::string& arg : extra_args) args.push_back(std::move(arg));
    pid_ = SpawnWithStderr(PERIODICAD_PATH, std::move(args),
                           dir_ + "/stderr.log");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline && tcp_port_ == 0) {
      std::ifstream log(dir_ + "/stderr.log");
      std::string line;
      while (std::getline(log, line)) {
        const std::string prefix = "periodicad: tcp listening on 127.0.0.1:";
        if (line.rfind(prefix, 0) == 0) {
          tcp_port_ = static_cast<std::uint16_t>(
              std::stoi(line.substr(prefix.size())));
          break;
        }
      }
      if (tcp_port_ == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    EXPECT_GT(tcp_port_, 0) << "shard did not report its TCP port";
  }

  ~ShardProcess() { Kill(); }

  /// SIGKILLs the shard (the crash under test) and reaps it.
  void Kill() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  [[nodiscard]] const std::string& socket_path() const { return socket_; }
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

 private:
  std::string dir_;
  std::string socket_;
  std::uint16_t tcp_port_ = 0;
  pid_t pid_ = -1;
};

/// The router under test, serving clients on a Unix socket and routing to
/// the given shard TCP endpoints with a fast heartbeat.
class RouterProcess {
 public:
  explicit RouterProcess(const std::vector<std::uint16_t>& shard_ports,
                         std::vector<std::string> extra_args = {}) {
    dir_ = UniqueDir();
    socket_ = dir_ + "/r.sock";
    std::string shards;
    for (std::size_t i = 0; i < shard_ports.size(); ++i) {
      if (i > 0) shards += ",";
      shards += "s" + std::to_string(i) + "=127.0.0.1:" +
                std::to_string(shard_ports[i]);
    }
    std::vector<std::string> args = {
        PERIODICA_ROUTER_PATH,  "--listen_socket=" + socket_,
        "--shards=" + shards,   "--heartbeat_ms=100",
        "--reconnect_base_ms=50", "--reconnect_max_ms=200",
        "--retry_after_ms=50"};
    for (std::string& arg : extra_args) args.push_back(std::move(arg));
    pid_ = SpawnWithStderr(PERIODICA_ROUTER_PATH, std::move(args),
                           dir_ + "/stderr.log");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (ConnectUnix(socket_).ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "router did not come up on " << socket_;
  }

  ~RouterProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  [[nodiscard]] const std::string& socket_path() const { return socket_; }

 private:
  std::string dir_;
  std::string socket_;
  pid_t pid_ = -1;
};

/// One connection; Call sends a request and reads the reply.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    Result<FdHandle> fd = ConnectUnix(socket_path);
    if (fd.ok()) fd_ = std::move(fd.value());
  }

  [[nodiscard]] bool connected() const { return fd_.valid(); }

  JsonValue Call(const std::string& method, JsonValue::Object params) {
    JsonValue::Object request;
    request["id"] = std::size_t{1};
    request["method"] = method;
    request["params"] = JsonValue(std::move(params));
    if (!SendLine(fd_.get(), JsonValue(std::move(request)).Dump()).ok()) {
      return JsonValue();
    }
    LineReader reader(fd_.get());
    Result<std::string> line = reader.Next();
    if (!line.ok()) return JsonValue();
    Result<JsonValue> response = JsonValue::Parse(line.value());
    return response.ok() ? response.value() : JsonValue();
  }

 private:
  FdHandle fd_;
};

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  return error == nullptr ? "" : error->GetString("code", "");
}

/// result.<key> from a router stats response, or -1 when missing.
double RouterStat(const std::string& router_socket, const std::string& key) {
  Client client(router_socket);
  const JsonValue stats = client.Call("stats", {});
  const JsonValue* result = stats.Find("result");
  return result == nullptr ? -1.0 : result->GetNumber(key, -1.0);
}

/// Polls the router's stats until `up_count` equals `want` (or fails after
/// `deadline_ms`). Returns the time it took.
std::chrono::milliseconds WaitForUpCount(const std::string& router_socket,
                                         double want, int deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (RouterStat(router_socket, "up_count") == want) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ADD_FAILURE() << "router never reached up_count=" << want;
  return std::chrono::milliseconds(deadline_ms);
}

/// Calls through a fresh connection, retrying transient failures the way a
/// real client would (feeds carry offsets, so retries are idempotent).
JsonValue CallWithRetry(const std::string& router_socket,
                        const std::string& method, JsonValue::Object params,
                        int attempts = 20) {
  JsonValue last;
  for (int i = 0; i < attempts; ++i) {
    Client client(router_socket);
    if (client.connected()) {
      last = client.Call(method, params);
      if (last.GetBool("ok", false)) return last;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return last;
}

std::string PeriodicSeries(std::size_t n, std::size_t period) {
  std::string series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(static_cast<char>('a' + (i % period) % 3));
  }
  return series;
}

TEST(RouterTest, PingAndStatsAreAnsweredLocally) {
  ShardProcess shard_a({});
  ShardProcess shard_b({});
  RouterProcess router({shard_a.tcp_port(), shard_b.tcp_port()});

  Client client(router.socket_path());
  ASSERT_TRUE(client.connected());
  const JsonValue pong = client.Call("ping", {});
  ASSERT_TRUE(pong.GetBool("ok", false)) << pong.Dump();
  EXPECT_TRUE(pong.Find("result")->GetBool("router", false))
      << "ping must be answered by the router, not a shard";

  EXPECT_EQ(RouterStat(router.socket_path(), "shard_count"), 2.0);
  WaitForUpCount(router.socket_path(), 2.0, 5000);
}

TEST(RouterTest, ForwardsMineToShards) {
  ShardProcess shard_a({});
  ShardProcess shard_b({});
  RouterProcess router({shard_a.tcp_port(), shard_b.tcp_port()});
  WaitForUpCount(router.socket_path(), 2.0, 5000);

  JsonValue::Object params;
  params["series"] = PeriodicSeries(120, 3);
  params["threshold"] = 0.9;
  const JsonValue mined = CallWithRetry(router.socket_path(), "mine", params);
  ASSERT_TRUE(mined.GetBool("ok", false)) << mined.Dump();
  bool found_period_3 = false;
  for (const JsonValue& summary :
       mined.Find("result")->Find("summaries")->as_array()) {
    if (summary.GetNumber("period", 0) == 3.0) found_period_3 = true;
  }
  EXPECT_TRUE(found_period_3) << mined.Dump();
  EXPECT_GE(RouterStat(router.socket_path(), "forwarded"), 1.0);
}

TEST(RouterTest, DeadShardIsMarkedDownAndTrafficReroutes) {
  ShardProcess shard_a({});
  ShardProcess shard_b({});
  RouterProcess router({shard_a.tcp_port(), shard_b.tcp_port()});
  WaitForUpCount(router.socket_path(), 2.0, 5000);

  shard_a.Kill();
  // Heartbeats run every 100ms with a 200ms deadline: detection must land
  // well within a few intervals even on a loaded CI host.
  const auto took = WaitForUpCount(router.socket_path(), 1.0, 5000);
  EXPECT_LT(took.count(), 3000) << "down-detection took too long";

  // The surviving shard carries all traffic.
  JsonValue::Object params;
  params["series"] = PeriodicSeries(60, 4);
  for (int i = 0; i < 4; ++i) {
    const JsonValue mined =
        CallWithRetry(router.socket_path(), "mine", params);
    ASSERT_TRUE(mined.GetBool("ok", false)) << mined.Dump();
  }
}

TEST(RouterTest, StreamRequestsWithoutSessionAreRejectedLocally) {
  ShardProcess shard({});
  RouterProcess router({shard.tcp_port()});

  Client client(router.socket_path());
  ASSERT_TRUE(client.connected());
  JsonValue::Object feed;
  feed["symbols"] = "abc";
  EXPECT_EQ(ErrorCode(client.Call("stream_feed", feed)), "INVALID_ARGUMENT");
  // The connection survives the rejection and keeps serving.
  EXPECT_TRUE(client.Call("ping", {}).GetBool("ok", false));
}

TEST(RouterTest, AllShardsDownYieldsRouterOverloaded) {
  ShardProcess shard({});
  RouterProcess router({shard.tcp_port()});
  WaitForUpCount(router.socket_path(), 1.0, 5000);

  shard.Kill();
  WaitForUpCount(router.socket_path(), 0.0, 5000);

  Client client(router.socket_path());
  JsonValue::Object params;
  params["series"] = "abcabc";
  const JsonValue rejected = client.Call("mine", params);
  ASSERT_EQ(ErrorCode(rejected), "OVERLOADED") << rejected.Dump();
  const JsonValue* error = rejected.Find("error");
  EXPECT_GE(error->GetNumber("retry_after_ms", -1), 0.0)
      << "router-origin OVERLOADED must carry a retry hint";
  EXPECT_GE(RouterStat(router.socket_path(), "no_shard_rejections"), 1.0);
}

// The acceptance scenario: sessions streamed through the router survive the
// SIGKILL of their shard — the router re-routes, the successor thaws from
// the shared checkpoint directory, and stream_detect is byte-identical to a
// never-migrated control run on a standalone daemon.
TEST(RouterTest, LiveMigrationKeepsDetectByteIdentical) {
  const std::string checkpoints = UniqueDir();
  ShardProcess shard_a(
      {"--checkpoint_dir=" + checkpoints, "--checkpoint_each_feed"});
  ShardProcess shard_b(
      {"--checkpoint_dir=" + checkpoints, "--checkpoint_each_feed"});
  ShardProcess control({});  // plain daemon, never migrated
  RouterProcess router({shard_a.tcp_port(), shard_b.tcp_port()});
  WaitForUpCount(router.socket_path(), 2.0, 5000);

  const std::string series = PeriodicSeries(240, 4);
  const std::string first_half = series.substr(0, 120);
  const std::string second_half = series.substr(120);

  // 8 sessions across 2 tenants: consistent hashing spreads them over both
  // shards, so some live on the shard about to die.
  struct Session {
    std::string tenant;
    std::string name;
  };
  std::vector<Session> sessions;
  for (int i = 0; i < 8; ++i) {
    sessions.push_back({i % 2 == 0 ? "tenant_a" : "tenant_b",
                        "stream" + std::to_string(i)});
  }

  Client control_client(control.socket_path());
  ASSERT_TRUE(control_client.connected());
  for (const Session& session : sessions) {
    JsonValue::Object open;
    open["tenant"] = session.tenant;
    open["session"] = session.name;
    open["max_period"] = std::size_t{16};
    open["alphabet_size"] = std::size_t{3};
    const JsonValue routed =
        CallWithRetry(router.socket_path(), "stream_open", open);
    ASSERT_TRUE(routed.GetBool("ok", false)) << routed.Dump();
    ASSERT_TRUE(control_client.Call("stream_open", open).GetBool("ok", false));

    JsonValue::Object feed;
    feed["tenant"] = session.tenant;
    feed["session"] = session.name;
    feed["symbols"] = first_half;
    feed["offset"] = std::size_t{0};
    const JsonValue fed =
        CallWithRetry(router.socket_path(), "stream_feed", feed);
    ASSERT_TRUE(fed.GetBool("ok", false)) << fed.Dump();
    ASSERT_TRUE(control_client.Call("stream_feed", feed).GetBool("ok", false));
  }

  // Kill one shard mid-stream. Its sessions migrate on next touch.
  shard_a.Kill();
  WaitForUpCount(router.socket_path(), 1.0, 5000);

  for (const Session& session : sessions) {
    JsonValue::Object feed;
    feed["tenant"] = session.tenant;
    feed["session"] = session.name;
    feed["symbols"] = second_half;
    feed["offset"] = first_half.size();
    const JsonValue fed =
        CallWithRetry(router.socket_path(), "stream_feed", feed);
    ASSERT_TRUE(fed.GetBool("ok", false))
        << session.tenant << "/" << session.name << ": " << fed.Dump();
    ASSERT_TRUE(control_client.Call("stream_feed", feed).GetBool("ok", false));
  }

  for (const Session& session : sessions) {
    JsonValue::Object detect;
    detect["tenant"] = session.tenant;
    detect["session"] = session.name;
    detect["threshold"] = 0.5;
    const JsonValue routed =
        CallWithRetry(router.socket_path(), "stream_detect", detect);
    ASSERT_TRUE(routed.GetBool("ok", false)) << routed.Dump();
    const JsonValue reference = control_client.Call("stream_detect", detect);
    ASSERT_TRUE(reference.GetBool("ok", false));
    EXPECT_EQ(routed.Dump(), reference.Dump())
        << "migrated detect must be byte-identical for " << session.tenant
        << "/" << session.name;
  }

  // The hash ring spreads 8 sessions over 2 shards, so the kill must have
  // migrated at least one.
  EXPECT_GE(RouterStat(router.socket_path(), "sessions_migrated"), 1.0);

  std::error_code ignored;
  std::filesystem::remove_all(checkpoints, ignored);
}

/// First session name ("z0", "z1", ...) whose routing key the router's
/// ring (shards named s0..s<n-1>, default virtual nodes) assigns to `want`
/// as primary owner. Replicates the router's placement exactly, so tests
/// can plant sessions on a chosen shard.
std::string SessionPrimariedOn(std::size_t shard_count,
                               const std::string& want,
                               const std::string& tenant) {
  serve::ShardMap ring;
  for (std::size_t i = 0; i < shard_count; ++i) {
    EXPECT_TRUE(ring.AddShard("s" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "z" + std::to_string(i);
    if (ring.PickPrimary(store::JoinKey({tenant, name})) == want) {
      return name;
    }
  }
  ADD_FAILURE() << "no session name primaried on " << want;
  return "z0";
}

// stream_discard is the migration fence: it drops the shard's live copy of
// a session but never touches the checkpoint — the snapshot may already
// belong to the session's new owner.
TEST(RouterTest, DiscardDropsTheLiveCopyButNeverTheCheckpoint) {
  const std::string checkpoints = UniqueDir();
  ShardProcess shard(
      {"--checkpoint_dir=" + checkpoints, "--checkpoint_each_feed"});
  Client client(shard.socket_path());
  ASSERT_TRUE(client.connected());

  JsonValue::Object open;
  open["session"] = "disc0";
  open["max_period"] = std::size_t{16};
  open["alphabet_size"] = std::size_t{3};
  ASSERT_TRUE(client.Call("stream_open", open).GetBool("ok", false));
  JsonValue::Object feed;
  feed["session"] = "disc0";
  feed["symbols"] = PeriodicSeries(120, 3);
  feed["offset"] = std::size_t{0};
  ASSERT_TRUE(client.Call("stream_feed", feed).GetBool("ok", false));

  JsonValue::Object key;
  key["session"] = "disc0";
  const JsonValue discarded = client.Call("stream_discard", key);
  ASSERT_TRUE(discarded.GetBool("ok", false)) << discarded.Dump();
  EXPECT_EQ(discarded.Find("result")->GetNumber("size", 0), 120.0);
  EXPECT_TRUE(discarded.Find("result")->GetBool("discarded", false));

  // The live copy is gone...
  EXPECT_EQ(ErrorCode(client.Call("stream_discard", key)), "NOT_FOUND");
  feed["offset"] = std::size_t{120};
  EXPECT_EQ(ErrorCode(client.Call("stream_feed", feed)), "NOT_FOUND");

  // ...but the checkpoint survived: resume thaws the full session.
  JsonValue::Object resume;
  resume["session"] = "disc0";
  resume["resume"] = true;
  const JsonValue thawed = client.Call("stream_open", resume);
  ASSERT_TRUE(thawed.GetBool("ok", false)) << thawed.Dump();
  EXPECT_EQ(thawed.Find("result")->GetNumber("size", 0), 120.0);

  std::error_code ignored;
  std::filesystem::remove_all(checkpoints, ignored);
}

// A stream_open served by a fallback shard (the ring walked past its down
// primary) must pin the key there — otherwise the primary's recovery pulls
// later requests back to a shard without the live state and strands the
// fallback's copy as a stale duplicate.
TEST(RouterTest, FallbackPlacementPinsTheSession) {
  ShardProcess shard_a({});
  ShardProcess shard_b({});
  RouterProcess router({shard_a.tcp_port(), shard_b.tcp_port()});
  WaitForUpCount(router.socket_path(), 2.0, 5000);

  const std::string session = SessionPrimariedOn(2, "s0", "default");
  shard_a.Kill();
  WaitForUpCount(router.socket_path(), 1.0, 5000);

  JsonValue::Object open;
  open["session"] = session;
  open["max_period"] = std::size_t{16};
  open["alphabet_size"] = std::size_t{3};
  const JsonValue opened =
      CallWithRetry(router.socket_path(), "stream_open", open);
  ASSERT_TRUE(opened.GetBool("ok", false)) << opened.Dump();
  EXPECT_GE(RouterStat(router.socket_path(), "fallback_pins"), 1.0);
  EXPECT_GE(RouterStat(router.socket_path(), "migration_pins"), 1.0);

  // Traffic follows the pin.
  JsonValue::Object feed;
  feed["session"] = session;
  feed["symbols"] = PeriodicSeries(120, 3);
  feed["offset"] = std::size_t{0};
  ASSERT_TRUE(CallWithRetry(router.socket_path(), "stream_feed", feed)
                  .GetBool("ok", false));
}

// A session its client abandons (no stream_close ever arrives) must not
// pin forever: after --pin_ttl_s idle seconds the router reaps the pin and
// best-effort discards the abandoned live copy on the pinned shard, so
// migrations_ stays bounded by the live working set.
TEST(RouterTest, IdleMigrationPinExpiresAfterTtl) {
  ShardProcess shard_a({});
  ShardProcess shard_b({});
  RouterProcess router({shard_a.tcp_port(), shard_b.tcp_port()},
                       {"--pin_ttl_s=1"});
  WaitForUpCount(router.socket_path(), 2.0, 5000);

  // Pin via fallback placement: the primary is down, so the open lands
  // (and pins) on the surviving shard.
  const std::string session = SessionPrimariedOn(2, "s0", "default");
  shard_a.Kill();
  WaitForUpCount(router.socket_path(), 1.0, 5000);
  JsonValue::Object open;
  open["session"] = session;
  open["max_period"] = std::size_t{16};
  open["alphabet_size"] = std::size_t{3};
  ASSERT_TRUE(CallWithRetry(router.socket_path(), "stream_open", open)
                  .GetBool("ok", false));
  ASSERT_GE(RouterStat(router.socket_path(), "migration_pins"), 1.0);

  // Abandon the session and wait out the TTL plus one sweep period.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         RouterStat(router.socket_path(), "pins_expired") < 1.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_GE(RouterStat(router.socket_path(), "pins_expired"), 1.0);
  EXPECT_EQ(RouterStat(router.socket_path(), "migration_pins"), 0.0);
  EXPECT_GE(RouterStat(router.socket_path(), "discards_sent"), 1.0);
}

// A health flap can leave two live copies of one session: an open that
// landed on a fallback shard while the primary was briefly down, then the
// stream repaired back onto the recovered primary. The stale copy must not
// capture traffic after the primary dies for real — a feed that trips on
// its mismatched size makes the router discard the stale copy, thaw the
// authoritative checkpoint, and replay; detect output stays byte-identical
// to a never-migrated control daemon.
TEST(RouterTest, StaleDuplicateCopyIsDiscardedAndRepaired) {
  const std::string checkpoints = UniqueDir();
  ShardProcess shard_a(
      {"--checkpoint_dir=" + checkpoints, "--checkpoint_each_feed"});
  ShardProcess shard_b(
      {"--checkpoint_dir=" + checkpoints, "--checkpoint_each_feed"});
  ShardProcess control({});
  RouterProcess router({shard_a.tcp_port(), shard_b.tcp_port()});
  WaitForUpCount(router.socket_path(), 2.0, 5000);

  const std::string session = SessionPrimariedOn(2, "s0", "default");
  const std::string series = PeriodicSeries(240, 4);
  const std::string first_half = series.substr(0, 120);
  const std::string second_half = series.substr(120);

  JsonValue::Object open;
  open["session"] = session;
  open["max_period"] = std::size_t{16};
  open["alphabet_size"] = std::size_t{3};

  Client control_client(control.socket_path());
  ASSERT_TRUE(control_client.connected());
  ASSERT_TRUE(control_client.Call("stream_open", open).GetBool("ok", false));
  ASSERT_TRUE(CallWithRetry(router.socket_path(), "stream_open", open)
                  .GetBool("ok", false));

  // Plant the zombie: the same session opened directly on the non-primary
  // shard — exactly what a transient primary mark-down during the open
  // used to produce (before the first feed, so the authoritative feed
  // checkpoints land after its empty snapshot).
  Client zombie_planter(shard_b.socket_path());
  ASSERT_TRUE(zombie_planter.connected());
  ASSERT_TRUE(zombie_planter.Call("stream_open", open).GetBool("ok", false));

  JsonValue::Object feed;
  feed["session"] = session;
  feed["symbols"] = first_half;
  feed["offset"] = std::size_t{0};
  ASSERT_TRUE(control_client.Call("stream_feed", feed).GetBool("ok", false));
  ASSERT_TRUE(CallWithRetry(router.socket_path(), "stream_feed", feed)
                  .GetBool("ok", false));

  // The primary dies; the ring now lands the key on the shard holding the
  // stale size-0 duplicate, whose size cannot match the client's offset.
  shard_a.Kill();
  WaitForUpCount(router.socket_path(), 1.0, 5000);

  feed["symbols"] = second_half;
  feed["offset"] = first_half.size();
  const JsonValue fed =
      CallWithRetry(router.socket_path(), "stream_feed", feed);
  ASSERT_TRUE(fed.GetBool("ok", false))
      << "feed must repair past the stale duplicate: " << fed.Dump();
  ASSERT_TRUE(control_client.Call("stream_feed", feed).GetBool("ok", false));

  JsonValue::Object detect;
  detect["session"] = session;
  detect["threshold"] = 0.5;
  const JsonValue routed =
      CallWithRetry(router.socket_path(), "stream_detect", detect);
  ASSERT_TRUE(routed.GetBool("ok", false)) << routed.Dump();
  const JsonValue reference = control_client.Call("stream_detect", detect);
  ASSERT_TRUE(reference.GetBool("ok", false));
  EXPECT_EQ(routed.Dump(), reference.Dump())
      << "repaired detect must be byte-identical";
  EXPECT_GE(RouterStat(router.socket_path(), "sessions_migrated"), 1.0);

  std::error_code ignored;
  std::filesystem::remove_all(checkpoints, ignored);
}

}  // namespace
}  // namespace periodica::tools
