#include "periodica/core/serialize.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "periodica/core/miner.h"

namespace periodica {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("periodica_serialize_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  MiningResult MineExample() {
    auto series = SymbolSeries::FromString("abcabbabcbabcabbabcb");
    EXPECT_TRUE(series.ok());
    MinerOptions options;
    options.threshold = 0.5;
    options.mine_patterns = true;
    auto result = ObscureMiner(options).Mine(*series);
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueOrDie();
  }

  std::filesystem::path dir_;
};

TEST_F(SerializeTest, PeriodicityRoundTrip) {
  const MiningResult result = MineExample();
  const Alphabet alphabet = Alphabet::Latin(3);
  const std::string path = Path("periodicities.csv");
  ASSERT_TRUE(
      WritePeriodicityCsv(result.periodicities, alphabet, path).ok());
  auto loaded = ReadPeriodicityCsv(path, alphabet);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->entries().size(), result.periodicities.entries().size());
  for (std::size_t i = 0; i < loaded->entries().size(); ++i) {
    EXPECT_EQ(loaded->entries()[i], result.periodicities.entries()[i]);
  }
  // Summaries are reconstructed from entries.
  ASSERT_EQ(loaded->summaries().size(),
            result.periodicities.summaries().size());
  for (std::size_t i = 0; i < loaded->summaries().size(); ++i) {
    EXPECT_EQ(loaded->summaries()[i], result.periodicities.summaries()[i]);
  }
}

TEST_F(SerializeTest, PatternRoundTrip) {
  const MiningResult result = MineExample();
  const Alphabet alphabet = Alphabet::Latin(3);
  const std::string path = Path("patterns.csv");
  ASSERT_TRUE(WritePatternCsv(result.patterns, alphabet, path).ok());
  auto loaded = ReadPatternCsv(path, alphabet);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), result.patterns.size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    const auto& a = loaded->patterns()[i];
    const auto& b = result.patterns.patterns()[i];
    EXPECT_EQ(a.pattern, b.pattern);
    EXPECT_EQ(a.count, b.count);
    EXPECT_NEAR(a.support, b.support, 1e-9);
  }
}

TEST_F(SerializeTest, ReadRejectsMalformedRows) {
  const Alphabet alphabet = Alphabet::Latin(3);
  {
    std::ofstream file(Path("bad1.csv"));
    file << "period,position,symbol,f2,pairs\n3,1,b,2\n";  // missing cell
  }
  EXPECT_TRUE(ReadPeriodicityCsv(Path("bad1.csv"), alphabet)
                  .status()
                  .IsInvalidArgument());
  {
    std::ofstream file(Path("bad2.csv"));
    file << "3,5,b,2,2\n";  // position >= period
  }
  EXPECT_TRUE(ReadPeriodicityCsv(Path("bad2.csv"), alphabet)
                  .status()
                  .IsInvalidArgument());
  {
    std::ofstream file(Path("bad3.csv"));
    file << "3,1,z,2,2\n";  // unknown symbol
  }
  EXPECT_TRUE(ReadPeriodicityCsv(Path("bad3.csv"), alphabet)
                  .status()
                  .IsNotFound());
  {
    std::ofstream file(Path("bad4.csv"));
    file << "3,1,b,5,2\n";  // f2 > pairs
  }
  EXPECT_TRUE(ReadPeriodicityCsv(Path("bad4.csv"), alphabet)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SerializeTest, PatternReadRejectsPeriodMismatch) {
  const Alphabet alphabet = Alphabet::Latin(3);
  {
    std::ofstream file(Path("bad.csv"));
    file << "pattern,period,count,support\nab*,4,2,0.5\n";  // pattern is p=3
  }
  EXPECT_TRUE(ReadPatternCsv(Path("bad.csv"), alphabet)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SerializeTest, WritePatternRejectsMultiLetterAlphabet) {
  auto alphabet = Alphabet::FromNames({"low", "high"});
  ASSERT_TRUE(alphabet.ok());
  PatternSet patterns;
  EXPECT_TRUE(WritePatternCsv(patterns, *alphabet, Path("x.csv"))
                  .IsInvalidArgument());
}

TEST_F(SerializeTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadPeriodicityCsv("/nonexistent/x.csv", Alphabet::Latin(2))
                  .status()
                  .IsIOError());
  EXPECT_TRUE(ReadPatternCsv("/nonexistent/x.csv", Alphabet::Latin(2))
                  .status()
                  .IsIOError());
}

}  // namespace
}  // namespace periodica
