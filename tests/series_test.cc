#include "periodica/series/series.h"

#include <gtest/gtest.h>

namespace periodica {
namespace {

SymbolSeries Make(std::string_view text) {
  auto series = SymbolSeries::FromString(text);
  EXPECT_TRUE(series.ok()) << series.status();
  return std::move(series).ValueOrDie();
}

TEST(SeriesTest, FromStringInfersAlphabet) {
  const SymbolSeries series = Make("abcabbabcb");
  EXPECT_EQ(series.size(), 10u);
  EXPECT_EQ(series.alphabet().size(), 3u);
  EXPECT_EQ(series[0], 0);  // a
  EXPECT_EQ(series[2], 2);  // c
  EXPECT_EQ(series.ToString(), "abcabbabcb");
}

TEST(SeriesTest, FromStringRejectsBadCharacters) {
  EXPECT_TRUE(SymbolSeries::FromString("abc1").status().IsInvalidArgument());
  EXPECT_TRUE(SymbolSeries::FromString("ab C").status().IsInvalidArgument());
}

TEST(SeriesTest, FromStringWithExplicitAlphabet) {
  const Alphabet alphabet = Alphabet::Latin(5);
  auto series = SymbolSeries::FromString("abc", alphabet);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->alphabet().size(), 5u);
  // Symbol outside the alphabet fails.
  EXPECT_TRUE(SymbolSeries::FromString("abz", Alphabet::Latin(3))
                  .status()
                  .IsInvalidArgument());
}

TEST(SeriesTest, EmptyString) {
  auto series = SymbolSeries::FromString("");
  ASSERT_TRUE(series.ok());
  EXPECT_TRUE(series->empty());
}

TEST(SeriesTest, AppendAndIndex) {
  SymbolSeries series(Alphabet::Latin(2));
  series.Append(0);
  series.Append(1);
  series.Append(0);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.ToString(), "aba");
}

// --- The projection examples from Sect. 2.2 of the paper. ---

TEST(SeriesTest, PaperProjectionExamples) {
  // "if T = abcabbabcb, then pi_{4,1}(T) = bbb, and pi_{3,0}(T) = aaab".
  const SymbolSeries series = Make("abcabbabcb");
  EXPECT_EQ(series.Projection(4, 1).ToString(), "bbb");
  EXPECT_EQ(series.Projection(3, 0).ToString(), "aaab");
}

TEST(SeriesTest, ProjectionCoversWholeSeriesForPeriodOne) {
  const SymbolSeries series = Make("abab");
  EXPECT_EQ(series.Projection(1, 0), series);
}

// --- The F2 examples from Sect. 2.2. ---

TEST(SeriesTest, PaperF2Examples) {
  // "if T = abbaaabaa, then F2(a, T) = 3 and F2(b, T) = 1".
  const SymbolSeries series = Make("abbaaabaa");
  EXPECT_EQ(F2(series, 0), 3u);  // a
  EXPECT_EQ(F2(series, 1), 1u);  // b
}

TEST(SeriesTest, F2ProjectionEqualsF2OfMaterializedProjection) {
  const SymbolSeries series = Make("abcabbabcb");
  for (std::size_t p = 1; p <= 5; ++p) {
    for (std::size_t l = 0; l < p; ++l) {
      const SymbolSeries projected = series.Projection(p, l);
      for (SymbolId s = 0; s < 3; ++s) {
        EXPECT_EQ(F2Projection(series, s, p, l), F2(projected, s))
            << "p=" << p << " l=" << l << " s=" << int(s);
      }
    }
  }
}

TEST(SeriesTest, ProjectionPairCountFormula) {
  // n=10, p=3, l=0: ceil(10/3)-1 = 3.
  EXPECT_EQ(ProjectionPairCount(10, 3, 0), 3u);
  // l=1: ceil(9/3)-1 = 2.
  EXPECT_EQ(ProjectionPairCount(10, 3, 1), 2u);
  // Projection with a single element has no pairs.
  EXPECT_EQ(ProjectionPairCount(10, 9, 5), 0u);
  // Position beyond the series.
  EXPECT_EQ(ProjectionPairCount(3, 5, 4), 0u);
}

TEST(SeriesTest, PaperDefinitionOneExample) {
  // "F2(a, pi_{3,0}(T)) / (ceil(10/3) - 1) = 2/3, thus the symbol a is
  // periodic with period 3 at position 0 w.r.t. psi <= 2/3" and "the symbol
  // b is periodic with period 3 at position 1" (confidence 1).
  const SymbolSeries series = Make("abcabbabcb");
  EXPECT_DOUBLE_EQ(PeriodicityConfidence(series, 0, 3, 0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PeriodicityConfidence(series, 1, 3, 1), 1.0);
}

TEST(SeriesTest, PeriodicityConfidenceEdgeCases) {
  // p=1 over "aa": one pair, one consecutive occurrence -> confidence 1.
  EXPECT_DOUBLE_EQ(PeriodicityConfidence(Make("aa"), 0, 1, 0), 1.0);
  // Mixed symbols at p=1 -> no consecutive pair of 'a'.
  EXPECT_DOUBLE_EQ(PeriodicityConfidence(Make("ab"), 0, 1, 0), 0.0);
  // Projection that is a singleton has no pairs -> confidence 0 by definition.
  EXPECT_DOUBLE_EQ(PeriodicityConfidence(Make("abcd"), 0, 3, 2), 0.0);
}

TEST(SeriesTest, Equality) {
  EXPECT_EQ(Make("abc"), Make("abc"));
  EXPECT_FALSE(Make("abc") == Make("acb"));
}

TEST(SeriesTest, DataSpanExposesSymbols) {
  const SymbolSeries series = Make("ba");
  const auto data = series.data();
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[1], 0);
}

}  // namespace
}  // namespace periodica
