#include "periodica/serve/session_table.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "periodica/core/streaming_detector.h"
#include "periodica/util/rng.h"

namespace periodica::serve {
namespace {

class SessionTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "session_table_test_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// One resident session costs this much, per the estimator the table
  /// charges with (max_period=16, sigma=3, default block size).
  static std::size_t SessionBytes() {
    StreamingPeriodDetector::Options options;
    options.max_period = 16;
    return StreamingPeriodDetector::EstimateMemoryBytes(3, options);
  }

  static SessionTable::Options BaseOptions(const std::string& dir) {
    SessionTable::Options options;
    options.checkpoint_dir = dir;
    return options;
  }

  static Result<SessionTable::OpenResult> OpenSmall(SessionTable* table,
                                                    const std::string& tenant,
                                                    const std::string& id,
                                                    SessionTable::Rejection*
                                                        rejection) {
    StreamingPeriodDetector::Options options;
    options.max_period = 16;
    return table->Open(tenant, id, /*alphabet_size=*/3, options,
                       /*resume=*/false, rejection);
  }

  static void Feed(SessionTable* table, const std::string& tenant,
                   const std::string& id, const std::string& symbols) {
    SessionTable::Rejection rejection;
    Result<SessionTable::Handle> handle =
        table->Acquire(tenant, id, &rejection);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    for (char c : symbols) {
      handle.value().detector()->Append(
          static_cast<SymbolId>(c - 'a'));
    }
  }

  std::string dir_;
};

TEST_F(SessionTableTest, OpenAcquireCloseLifecycle) {
  SessionTable table(BaseOptions(dir_));
  SessionTable::Rejection rejection;
  Result<SessionTable::OpenResult> opened =
      OpenSmall(&table, "acme", "s1", &rejection);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().size, 0u);
  EXPECT_TRUE(table.Contains("acme", "s1"));
  EXPECT_FALSE(table.Contains("other", "s1"));  // tenants are namespaces

  Feed(&table, "acme", "s1", "abcabcabc");
  {
    Result<SessionTable::Handle> handle =
        table.Acquire("acme", "s1", &rejection);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle.value().detector()->size(), 9u);
  }

  // Duplicate open fails; unknown sessions are NotFound.
  EXPECT_TRUE(OpenSmall(&table, "acme", "s1", &rejection)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      table.Acquire("acme", "nope", &rejection).status().IsNotFound());
  EXPECT_TRUE(table.Close("acme", "nope", false).status().IsNotFound());

  Result<SessionTable::CloseResult> closed = table.Close("acme", "s1", true);
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed.value().size, 9u);
  EXPECT_EQ(closed.value().checkpoint_path, dir_ + "/acme@s1.pchk");
  EXPECT_TRUE(std::filesystem::exists(closed.value().checkpoint_path));
  EXPECT_FALSE(table.Contains("acme", "s1"));
}

TEST_F(SessionTableTest, DefaultTenantKeepsLegacyCheckpointName) {
  SessionTable table(BaseOptions(dir_));
  EXPECT_EQ(table.CheckpointPath("default", "s1"), dir_ + "/s1.pchk");
  EXPECT_EQ(table.CheckpointPath("acme", "s1"), dir_ + "/acme@s1.pchk");
}

TEST_F(SessionTableTest, ValidNameRejectsPathTricks) {
  EXPECT_TRUE(SessionTable::ValidName("s1"));
  EXPECT_TRUE(SessionTable::ValidName("a-b_c.9"));
  EXPECT_FALSE(SessionTable::ValidName(""));
  EXPECT_FALSE(SessionTable::ValidName("a/b"));
  EXPECT_FALSE(SessionTable::ValidName(".."));
  EXPECT_FALSE(SessionTable::ValidName("x..y"));
  EXPECT_FALSE(SessionTable::ValidName("a@b"));  // '@' is the tenant sep
  EXPECT_FALSE(SessionTable::ValidName(std::string(201, 'a')));
}

// The S3 regression: force eviction under tenant memory pressure, feed the
// evicted session again (transparent thaw), and require detection output
// bit-identical to a session that was never evicted.
TEST_F(SessionTableTest, EvictedSessionThawsBitIdentical) {
  // Budget for two resident sessions per tenant: opening the third evicts
  // the LRU-idle one.
  SessionTable::Options options = BaseOptions(dir_);
  options.tenant_budget_bytes = 2 * SessionBytes() + SessionBytes() / 2;
  SessionTable table(options);

  // The control lives in an unbudgeted table and is never evicted.
  SessionTable control_table(BaseOptions(dir_ + "/control"));
  std::filesystem::create_directories(dir_ + "/control");

  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "victim", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&control_table, "acme", "victim", &rejection).ok());

  // Identical prefix into both detectors.
  Rng rng(7);
  std::string prefix;
  for (int i = 0; i < 200; ++i) {
    prefix.push_back(static_cast<char>('a' + rng.UniformInt(3)));
  }
  Feed(&table, "acme", "victim", prefix);
  Feed(&control_table, "acme", "victim", prefix);

  // Two more opens push the tenant over budget; "victim" is LRU → evicted.
  ASSERT_TRUE(OpenSmall(&table, "acme", "filler1", &rejection).ok());
  Feed(&table, "acme", "filler1", "abc");
  ASSERT_TRUE(OpenSmall(&table, "acme", "filler2", &rejection).ok());
  const SessionTable::Stats mid = table.GetStats();
  ASSERT_GE(mid.evictions, 1u) << "tenant budget did not force an eviction";
  ASSERT_TRUE(std::filesystem::exists(dir_ + "/acme@victim.pchk"));
  EXPECT_TRUE(table.Contains("acme", "victim"));  // still open, just cold

  // Feeding again thaws transparently; same suffix into the control.
  std::string suffix;
  for (int i = 0; i < 100; ++i) {
    suffix.push_back(static_cast<char>('a' + rng.UniformInt(3)));
  }
  Feed(&table, "acme", "victim", suffix);
  Feed(&control_table, "acme", "victim", suffix);
  const SessionTable::Stats after = table.GetStats();
  EXPECT_GE(after.thaws, 1u);

  // Detection must be bit-identical to the never-evicted control.
  SessionTable::Rejection r2;
  Result<SessionTable::Handle> thawed = table.Acquire("acme", "victim", &r2);
  ASSERT_TRUE(thawed.ok()) << thawed.status().ToString();
  Result<SessionTable::Handle> fresh =
      control_table.Acquire("acme", "victim", &r2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(thawed.value().detector()->size(),
            fresh.value().detector()->size());
  const PeriodicityTable thawed_result =
      thawed.value().detector()->Detect(0.3, 2, 1);
  const PeriodicityTable fresh_result =
      fresh.value().detector()->Detect(0.3, 2, 1);
  EXPECT_EQ(thawed_result.entries(), fresh_result.entries());
  EXPECT_EQ(thawed_result.summaries(), fresh_result.summaries());
}

TEST_F(SessionTableTest, QuotaRejectsWhenNothingIsEvictable) {
  // No checkpoint_dir: eviction is impossible, so quota pressure must turn
  // into a structured rejection, not an eviction.
  SessionTable::Options options;
  options.tenant_budget_bytes = SessionBytes() + SessionBytes() / 2;
  options.quota_retry_after_ms = 77;
  SessionTable table(options);

  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "s1", &rejection).ok());
  Result<SessionTable::OpenResult> denied =
      OpenSmall(&table, "acme", "s2", &rejection);
  ASSERT_TRUE(denied.status().IsResourceExhausted());
  EXPECT_TRUE(rejection.quota_exceeded);
  EXPECT_EQ(rejection.retry_after_ms, 77);
  EXPECT_EQ(rejection.tenant, "acme");
  EXPECT_FALSE(table.Contains("acme", "s2"));

  // Another tenant has its own budget and is unaffected.
  SessionTable::Rejection other;
  EXPECT_TRUE(OpenSmall(&table, "beta", "s1", &other).ok());

  const SessionTable::Stats stats = table.GetStats();
  EXPECT_EQ(stats.quota_rejections, 1u);
  EXPECT_EQ(stats.tenants.at("acme").quota_rejections, 1u);
  EXPECT_EQ(stats.tenants.at("beta").quota_rejections, 0u);
}

TEST_F(SessionTableTest, SessionCapIsPerTenant) {
  SessionTable::Options options = BaseOptions(dir_);
  options.max_sessions_per_tenant = 2;
  SessionTable table(options);
  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "s1", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&table, "acme", "s2", &rejection).ok());
  EXPECT_TRUE(OpenSmall(&table, "acme", "s3", &rejection)
                  .status()
                  .IsResourceExhausted());
  EXPECT_TRUE(OpenSmall(&table, "beta", "s1", &rejection).ok());
  // Closing frees a slot.
  ASSERT_TRUE(table.Close("acme", "s1", false).ok());
  EXPECT_TRUE(OpenSmall(&table, "acme", "s3", &rejection).ok());
}

TEST_F(SessionTableTest, GlobalBudgetEvictsFairShareAcrossTenants) {
  // Global budget holds 3 resident sessions; tenant "hog" owns 3, then
  // "small" opens one — the fair-share evictor must take a hog session,
  // not reject small.
  SessionTable::Options options = BaseOptions(dir_);
  options.global_budget_bytes = 3 * SessionBytes() + SessionBytes() / 2;
  SessionTable table(options);
  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "hog", "h1", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&table, "hog", "h2", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&table, "hog", "h3", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&table, "small", "s1", &rejection).ok());

  const SessionTable::Stats stats = table.GetStats();
  EXPECT_EQ(stats.sessions, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.tenants.at("hog").evictions, 1u);
  EXPECT_EQ(stats.tenants.at("small").evictions, 0u);
  EXPECT_EQ(stats.tenants.at("small").resident, 1u);
  // h1 was the oldest idle hog session.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/hog@h1.pchk"));
}

TEST_F(SessionTableTest, AcquirePinsAgainstEviction) {
  SessionTable::Options options = BaseOptions(dir_);
  options.tenant_budget_bytes = SessionBytes() + SessionBytes() / 2;
  SessionTable table(options);
  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "pinned", &rejection).ok());

  Result<SessionTable::Handle> held =
      table.Acquire("acme", "pinned", &rejection);
  ASSERT_TRUE(held.ok());
  // While "pinned" is held it cannot be evicted; with nothing else
  // evictable the second open must be rejected, not deadlock.
  Result<SessionTable::OpenResult> denied =
      OpenSmall(&table, "acme", "other", &rejection);
  EXPECT_TRUE(denied.status().IsResourceExhausted());
  EXPECT_TRUE(rejection.quota_exceeded);
}

TEST_F(SessionTableTest, CloseWithoutCheckpointRemovesStaleFile) {
  SessionTable::Options options = BaseOptions(dir_);
  options.tenant_budget_bytes = SessionBytes() + SessionBytes() / 2;
  SessionTable table(options);
  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "old", &rejection).ok());
  Feed(&table, "acme", "old", "abcabc");
  // Evict "old" by opening another session.
  ASSERT_TRUE(OpenSmall(&table, "acme", "new", &rejection).ok());
  const std::string path = dir_ + "/acme@old.pchk";
  ASSERT_TRUE(std::filesystem::exists(path));
  // Closing without checkpoint=true must not leave the eviction file
  // behind to be resumed later.
  ASSERT_TRUE(table.Close("acme", "old", false).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(SessionTableTest, DrainCheckpointsEveryResidentSession) {
  SessionTable table(BaseOptions(dir_));
  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "a", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&table, "default", "b", &rejection).ok());
  Feed(&table, "acme", "a", "abcabc");

  std::vector<std::string> log;
  EXPECT_EQ(table.CheckpointAllForDrain(&log), 0u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/acme@a.pchk"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/b.pchk"));

  // The drain checkpoint resumes bit-exactly into a fresh table.
  SessionTable resumed(BaseOptions(dir_));
  Result<SessionTable::OpenResult> opened =
      resumed.Open("acme", "a", 0, {}, /*resume=*/true, &rejection);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().size, 6u);
}

TEST_F(SessionTableTest, ConcurrentChurnAcrossTenantsStaysConsistent) {
  SessionTable::Options options = BaseOptions(dir_);
  options.tenant_budget_bytes = 2 * SessionBytes() + SessionBytes() / 2;
  SessionTable table(options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      const std::string tenant = "t" + std::to_string(t % 2);
      for (int i = 0; i < kRounds; ++i) {
        const std::string id =
            "s" + std::to_string(t) + "_" + std::to_string(i % 5);
        SessionTable::Rejection rejection;
        StreamingPeriodDetector::Options detector_options;
        detector_options.max_period = 16;
        if (table.Open(tenant, id, 3, detector_options, false, &rejection)
                .ok()) {
          SessionTable::Rejection r2;
          if (Result<SessionTable::Handle> handle =
                  table.Acquire(tenant, id, &r2);
              handle.ok()) {
            handle.value().detector()->Append(0);
            handle.value().detector()->Append(1);
          }
          (void)table.Close(tenant, id, (i % 3) == 0);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const SessionTable::Stats stats = table.GetStats();
  EXPECT_EQ(stats.sessions, 0u);
  EXPECT_EQ(stats.resident, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

// --- Store-backed checkpoints ------------------------------------------------
//
// The same lifecycle, but durability goes through store::KvStore (WAL +
// segments) instead of loose .pchk files. The contract under test: a
// store-backed table behaves exactly like a file-backed one — evictions
// thaw bit-identically, Close(checkpoint=true) survives a full store
// reopen — with no .pchk files ever appearing.

class StoreBackedSessionTest : public SessionTableTest {
 protected:
  std::unique_ptr<store::KvStore> OpenStore() {
    store::KvStore::Options options;
    options.dir = dir_ + "/store";
    Result<std::unique_ptr<store::KvStore>> opened =
        store::KvStore::Open(std::move(options));
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return opened.ok() ? std::move(opened.value()) : nullptr;
  }

  static SessionTable::Options StoreOnlyOptions(store::KvStore* kv) {
    SessionTable::Options options;  // deliberately no checkpoint_dir
    options.store = kv;
    return options;
  }
};

TEST_F(StoreBackedSessionTest, EvictionThawsBitIdenticalWithNoFiles) {
  std::unique_ptr<store::KvStore> kv = OpenStore();
  ASSERT_NE(kv, nullptr);
  SessionTable::Options options = StoreOnlyOptions(kv.get());
  options.tenant_budget_bytes = 2 * SessionBytes() + SessionBytes() / 2;
  SessionTable table(options);
  SessionTable control(StoreOnlyOptions(kv.get()));

  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "victim", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&control, "acme", "victim", &rejection).ok());
  Rng rng(11);
  std::string prefix;
  for (int i = 0; i < 200; ++i) {
    prefix.push_back(static_cast<char>('a' + rng.UniformInt(3)));
  }
  Feed(&table, "acme", "victim", prefix);
  Feed(&control, "acme", "victim", prefix);

  ASSERT_TRUE(OpenSmall(&table, "acme", "filler1", &rejection).ok());
  Feed(&table, "acme", "filler1", "abc");
  ASSERT_TRUE(OpenSmall(&table, "acme", "filler2", &rejection).ok());
  ASSERT_GE(table.GetStats().evictions, 1u)
      << "tenant budget did not force an eviction through the store";

  std::string suffix;
  for (int i = 0; i < 100; ++i) {
    suffix.push_back(static_cast<char>('a' + rng.UniformInt(3)));
  }
  Feed(&table, "acme", "victim", suffix);
  Feed(&control, "acme", "victim", suffix);
  EXPECT_GE(table.GetStats().thaws, 1u);

  SessionTable::Rejection r2;
  Result<SessionTable::Handle> thawed = table.Acquire("acme", "victim", &r2);
  ASSERT_TRUE(thawed.ok()) << thawed.status().ToString();
  Result<SessionTable::Handle> fresh = control.Acquire("acme", "victim", &r2);
  ASSERT_TRUE(fresh.ok());
  const PeriodicityTable thawed_result =
      thawed.value().detector()->Detect(0.3, 2, 1);
  const PeriodicityTable fresh_result =
      fresh.value().detector()->Detect(0.3, 2, 1);
  EXPECT_EQ(thawed_result.entries(), fresh_result.entries());
  EXPECT_EQ(thawed_result.summaries(), fresh_result.summaries());

  // Everything durable went through the store: no loose checkpoint files.
  std::size_t pchk_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".pchk") ++pchk_files;
  }
  EXPECT_EQ(pchk_files, 0u);
}

TEST_F(StoreBackedSessionTest, CloseCheckpointSurvivesStoreReopen) {
  // The full-restart path: checkpoint to the store, tear down table AND
  // store (daemon death), recover the store from disk, resume. The thawed
  // session must detect bit-identically to the pre-restart one.
  PeriodicityTable before = [&] {
    std::unique_ptr<store::KvStore> kv = OpenStore();
    SessionTable table(StoreOnlyOptions(kv.get()));
    SessionTable::Rejection rejection;
    EXPECT_TRUE(OpenSmall(&table, "acme", "s1", &rejection).ok());
    Feed(&table, "acme", "s1", "abcabcabcabcabcabc");
    Result<SessionTable::Handle> handle =
        table.Acquire("acme", "s1", &rejection);
    EXPECT_TRUE(handle.ok());
    const PeriodicityTable result =
        handle.value().detector()->Detect(0.3, 2, 1);
    handle = SessionTable::Handle();  // release before Close
    Result<SessionTable::CloseResult> closed = table.Close("acme", "s1", true);
    EXPECT_TRUE(closed.ok()) << closed.status().ToString();
    EXPECT_EQ(closed.value().checkpoint_path, "store://acme/s1");
    EXPECT_EQ(closed.value().size, 18u);
    return result;
  }();

  std::unique_ptr<store::KvStore> kv = OpenStore();  // WAL replay happens here
  ASSERT_NE(kv, nullptr);
  EXPECT_GE(kv->GetStats().recoveries, 1u);
  SessionTable table(StoreOnlyOptions(kv.get()));
  SessionTable::Rejection rejection;
  Result<SessionTable::OpenResult> resumed =
      table.Open("acme", "s1", 0, {}, /*resume=*/true, &rejection);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().size, 18u);
  Result<SessionTable::Handle> handle = table.Acquire("acme", "s1", &rejection);
  ASSERT_TRUE(handle.ok());
  const PeriodicityTable after = handle.value().detector()->Detect(0.3, 2, 1);
  EXPECT_EQ(before.entries(), after.entries());
  EXPECT_EQ(before.summaries(), after.summaries());
}

TEST_F(StoreBackedSessionTest, CloseWithoutCheckpointDropsTheStoreRecord) {
  std::unique_ptr<store::KvStore> kv = OpenStore();
  ASSERT_NE(kv, nullptr);
  {
    SessionTable table(StoreOnlyOptions(kv.get()));
    SessionTable::Rejection rejection;
    ASSERT_TRUE(OpenSmall(&table, "acme", "s1", &rejection).ok());
    Feed(&table, "acme", "s1", "abcabc");
    ASSERT_TRUE(table.Close("acme", "s1", true).ok());
    // Reopen-from-checkpoint, then close *declining* the checkpoint: the
    // stale record must not survive to be resumed later.
    ASSERT_TRUE(table.Open("acme", "s1", 0, {}, true, &rejection).ok());
    ASSERT_TRUE(table.Close("acme", "s1", false).ok());
  }
  SessionTable table(StoreOnlyOptions(kv.get()));
  SessionTable::Rejection rejection;
  EXPECT_FALSE(table.Open("acme", "s1", 0, {}, true, &rejection).ok());
}

TEST_F(StoreBackedSessionTest, LooseFileCheckpointsStayResumable) {
  // Migration: checkpoints written by a file-backed table (pre-store
  // deployments) must still resume once the store is switched on, when the
  // old checkpoint_dir is kept as the fallback.
  {
    SessionTable file_backed(BaseOptions(dir_));
    SessionTable::Rejection rejection;
    ASSERT_TRUE(OpenSmall(&file_backed, "acme", "old", &rejection).ok());
    Feed(&file_backed, "acme", "old", "abcabcabc");
    ASSERT_TRUE(file_backed.Close("acme", "old", true).ok());
  }
  ASSERT_TRUE(std::filesystem::exists(dir_ + "/acme@old.pchk"));

  std::unique_ptr<store::KvStore> kv = OpenStore();
  ASSERT_NE(kv, nullptr);
  SessionTable::Options options = BaseOptions(dir_);  // dir kept as fallback
  options.store = kv.get();
  SessionTable table(options);
  SessionTable::Rejection rejection;
  Result<SessionTable::OpenResult> resumed =
      table.Open("acme", "old", 0, {}, /*resume=*/true, &rejection);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().size, 9u);
}

TEST_F(StoreBackedSessionTest, DrainCheckpointsEverySessionToTheStore) {
  std::unique_ptr<store::KvStore> kv = OpenStore();
  ASSERT_NE(kv, nullptr);
  {
    SessionTable table(StoreOnlyOptions(kv.get()));
    SessionTable::Rejection rejection;
    ASSERT_TRUE(OpenSmall(&table, "acme", "a", &rejection).ok());
    ASSERT_TRUE(OpenSmall(&table, "default", "b", &rejection).ok());
    Feed(&table, "acme", "a", "abcabc");
    std::vector<std::string> log;
    EXPECT_EQ(table.CheckpointAllForDrain(&log), 0u);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_NE(log[0].find("store://"), std::string::npos) << log[0];
  }
  SessionTable resumed(StoreOnlyOptions(kv.get()));
  SessionTable::Rejection rejection;
  Result<SessionTable::OpenResult> opened =
      resumed.Open("acme", "a", 0, {}, /*resume=*/true, &rejection);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().size, 6u);
  EXPECT_TRUE(resumed.Open("default", "b", 0, {}, true, &rejection).ok());
}

TEST_F(SessionTableTest, IdleAgeHistogramCountsResidentIdleSessions) {
  SessionTable table(BaseOptions(dir_));
  SessionTable::Rejection rejection;
  ASSERT_TRUE(OpenSmall(&table, "acme", "s1", &rejection).ok());
  ASSERT_TRUE(OpenSmall(&table, "acme", "s2", &rejection).ok());

  SessionTable::Stats stats = table.GetStats();
  std::size_t total = 0;
  for (const std::size_t bucket : stats.idle_age_buckets) total += bucket;
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(stats.idle_age_buckets[0], 2u);  // both touched just now

  // A pinned session is in use, not idle — it leaves the histogram.
  Result<SessionTable::Handle> held = table.Acquire("acme", "s1", &rejection);
  ASSERT_TRUE(held.ok());
  stats = table.GetStats();
  total = 0;
  for (const std::size_t bucket : stats.idle_age_buckets) total += bucket;
  EXPECT_EQ(total, 1u);
}

}  // namespace
}  // namespace periodica::serve
