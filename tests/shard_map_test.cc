// Tests for the consistent-hash shard placement (serve/shard_map.h): the
// properties the router's correctness rests on — deterministic placement,
// minimal remapping when a shard goes down, bit-for-bit restoration when it
// comes back, and a tolerable load spread across shards.

#include "periodica/serve/shard_map.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace periodica::serve {
namespace {

std::vector<std::string> TestKeys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("tenant" + std::to_string(i % 7) + "\x1Fsession" +
                   std::to_string(i));
  }
  return keys;
}

TEST(ShardMapTest, AddShardValidation) {
  ShardMap map;
  EXPECT_TRUE(map.AddShard("a").ok());
  EXPECT_TRUE(map.AddShard("b").ok());
  EXPECT_FALSE(map.AddShard("a").ok());  // duplicate
  EXPECT_FALSE(map.AddShard("").ok());   // empty
  EXPECT_EQ(map.shard_count(), 2u);
  EXPECT_EQ(map.up_count(), 2u);
}

TEST(ShardMapTest, PlacementIsDeterministic) {
  ShardMap a;
  ShardMap b;
  for (const char* name : {"s0", "s1", "s2"}) {
    ASSERT_TRUE(a.AddShard(name).ok());
    ASSERT_TRUE(b.AddShard(name).ok());
  }
  for (const std::string& key : TestKeys(500)) {
    const auto pick_a = a.Pick(key);
    const auto pick_b = b.Pick(key);
    ASSERT_TRUE(pick_a.has_value());
    EXPECT_EQ(*pick_a, *pick_b) << key;
  }
}

TEST(ShardMapTest, HashKeyIsStable) {
  // Pinned value: placement must agree across builds and router replicas;
  // a silent hash change would shuffle every key on upgrade.
  EXPECT_EQ(ShardMap::HashKey("abc"), ShardMap::HashKey("abc"));
  EXPECT_NE(ShardMap::HashKey("abc"), ShardMap::HashKey("abd"));
}

TEST(ShardMapTest, DownShardOnlyRemapsItsOwnKeys) {
  ShardMap map;
  for (const char* name : {"s0", "s1", "s2"}) {
    ASSERT_TRUE(map.AddShard(name).ok());
  }
  const std::vector<std::string> keys = TestKeys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = *map.Pick(key);

  map.SetUp("s1", false);
  EXPECT_EQ(map.up_count(), 2u);
  for (const std::string& key : keys) {
    const auto after = map.Pick(key);
    ASSERT_TRUE(after.has_value());
    EXPECT_NE(*after, "s1");
    if (before[key] != "s1") {
      // Keys the dead shard did not own keep their placement exactly.
      EXPECT_EQ(*after, before[key]) << key;
    }
  }
}

TEST(ShardMapTest, RestoringAShardRestoresPlacementExactly) {
  ShardMap map;
  for (const char* name : {"s0", "s1", "s2", "s3"}) {
    ASSERT_TRUE(map.AddShard(name).ok());
  }
  const std::vector<std::string> keys = TestKeys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = *map.Pick(key);

  map.SetUp("s2", false);
  map.SetUp("s2", true);
  for (const std::string& key : keys) {
    EXPECT_EQ(*map.Pick(key), before[key]) << key;
  }
}

TEST(ShardMapTest, AllShardsDownPicksNothing) {
  ShardMap map;
  ASSERT_TRUE(map.AddShard("only").ok());
  map.SetUp("only", false);
  EXPECT_FALSE(map.Pick("anything").has_value());
  EXPECT_EQ(map.up_count(), 0u);
  // Unknown names are ignored, and an empty map picks nothing.
  map.SetUp("ghost", true);
  EXPECT_FALSE(map.IsUp("ghost"));
  ShardMap empty;
  EXPECT_FALSE(empty.Pick("key").has_value());
}

TEST(ShardMapTest, LoadSpreadIsBounded) {
  ShardMap map(/*virtual_nodes=*/64);
  const std::vector<std::string> names = {"s0", "s1", "s2", "s3", "s4"};
  for (const std::string& name : names) {
    ASSERT_TRUE(map.AddShard(name).ok());
  }
  std::map<std::string, std::size_t> counts;
  const std::size_t kKeys = 5000;
  for (const std::string& key : TestKeys(kKeys)) ++counts[*map.Pick(key)];
  ASSERT_EQ(counts.size(), names.size());  // every shard owns something
  const double expected = static_cast<double>(kKeys) / names.size();
  for (const auto& [name, count] : counts) {
    // 64 virtual nodes keeps the spread well inside 2x of fair share.
    EXPECT_GT(count, expected * 0.5) << name;
    EXPECT_LT(count, expected * 2.0) << name;
  }
}

TEST(ShardMapTest, SingleUpShardOwnsEverything) {
  ShardMap map;
  ASSERT_TRUE(map.AddShard("a").ok());
  ASSERT_TRUE(map.AddShard("b").ok());
  map.SetUp("a", false);
  for (const std::string& key : TestKeys(100)) {
    EXPECT_EQ(*map.Pick(key), "b");
  }
}

TEST(ShardMapTest, PickPrimaryIgnoresHealth) {
  ShardMap map;
  ASSERT_TRUE(map.AddShard("a").ok());
  ASSERT_TRUE(map.AddShard("b").ok());
  ASSERT_TRUE(map.AddShard("c").ok());
  // With everything up, the primary IS the pick.
  const std::vector<std::string> keys = TestKeys(200);
  for (const std::string& key : keys) {
    EXPECT_EQ(*map.PickPrimary(key), *map.Pick(key)) << key;
  }
  // Health flaps never move the primary: the router compares Pick against
  // this to recognise fallback placements.
  ShardMap all_up;
  ASSERT_TRUE(all_up.AddShard("a").ok());
  ASSERT_TRUE(all_up.AddShard("b").ok());
  ASSERT_TRUE(all_up.AddShard("c").ok());
  map.SetUp("a", false);
  map.SetUp("b", false);
  for (const std::string& key : keys) {
    EXPECT_EQ(*map.PickPrimary(key), *all_up.PickPrimary(key)) << key;
  }
  std::size_t fallbacks = 0;
  for (const std::string& key : keys) {
    const std::string primary = *map.PickPrimary(key);
    if (primary != "c") {
      ++fallbacks;
      EXPECT_EQ(*map.Pick(key), "c") << key;
    }
  }
  EXPECT_GT(fallbacks, 0u);  // some keys really were remapped
}

}  // namespace
}  // namespace periodica::serve
