#include "periodica/core/significance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "periodica/core/fft_miner.h"
#include "periodica/gen/synthetic.h"
#include "periodica/util/rng.h"

namespace periodica {
namespace {

/// Brute-force P[X >= k] for X ~ Binomial(n, p).
double NaiveUpperTail(std::uint64_t n, double p, std::uint64_t k) {
  double total = 0.0;
  for (std::uint64_t x = k; x <= n; ++x) {
    double pmf = 1.0;
    // C(n, x) p^x (1-p)^(n-x) built iteratively.
    for (std::uint64_t i = 0; i < x; ++i) {
      pmf *= static_cast<double>(n - i) / static_cast<double>(x - i);
      pmf *= p;
    }
    for (std::uint64_t i = 0; i < n - x; ++i) pmf *= (1.0 - p);
    total += pmf;
  }
  return total;
}

TEST(BinomialTailTest, MatchesNaiveComputation) {
  const struct {
    std::uint64_t trials;
    double prob;
    std::uint64_t observed;
  } cases[] = {
      {10, 0.5, 5},  {10, 0.5, 10}, {10, 0.1, 3},  {20, 0.25, 1},
      {20, 0.25, 9}, {30, 0.01, 2}, {15, 0.9, 14}, {1, 0.3, 1},
  };
  for (const auto& test_case : cases) {
    const double expected =
        NaiveUpperTail(test_case.trials, test_case.prob, test_case.observed);
    const double actual = std::exp(LogBinomialUpperTail(
        test_case.trials, test_case.prob, test_case.observed));
    EXPECT_NEAR(actual, expected, 1e-10 + expected * 1e-9)
        << "n=" << test_case.trials << " p=" << test_case.prob
        << " k=" << test_case.observed;
  }
}

TEST(BinomialTailTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(LogBinomialUpperTail(10, 0.5, 0), 0.0);  // P >= 0 is 1
  EXPECT_TRUE(std::isinf(LogBinomialUpperTail(10, 0.5, 11)));
  EXPECT_TRUE(std::isinf(LogBinomialUpperTail(10, 0.0, 1)));
  EXPECT_DOUBLE_EQ(LogBinomialUpperTail(10, 1.0, 10), 0.0);
}

TEST(BinomialTailTest, MonotoneInObserved) {
  double previous = 0.0;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    const double log_p = LogBinomialUpperTail(50, 0.2, k);
    EXPECT_LT(log_p, previous) << "k=" << k;
    previous = log_p;
  }
}

TEST(BinomialTailTest, LargeTrialsStaysFinite) {
  const double log_p = LogBinomialUpperTail(100000, 0.01, 1500);
  EXPECT_TRUE(std::isfinite(log_p));
  EXPECT_LT(log_p, std::log(1e-20));  // wildly over-represented
}

TEST(SignificanceTest, RandomDataEntriesAreNotSignificant) {
  Rng rng(41);
  SymbolSeries series(Alphabet::Latin(5));
  for (int i = 0; i < 5000; ++i) {
    series.Append(static_cast<SymbolId>(rng.UniformInt(5)));
  }
  // A permissive threshold admits plenty of chance periodicities...
  MinerOptions options;
  options.threshold = 0.3;
  options.max_period = 500;
  const PeriodicityTable table = FftConvolutionMiner(series).Mine(options);
  ASSERT_GT(table.entries().size(), 50u);
  // ...but the significance screen at 1e-6 kills essentially all of them.
  auto significant = FilterSignificant(table, series);
  ASSERT_TRUE(significant.ok());
  EXPECT_LT(significant->size(), table.entries().size() / 20 + 1);
}

TEST(SignificanceTest, PlantedPeriodicitySurvives) {
  SyntheticSpec spec;
  spec.length = 5000;
  spec.alphabet_size = 5;
  spec.period = 25;
  spec.seed = 44;
  auto perfect = GeneratePerfect(spec);
  ASSERT_TRUE(perfect.ok());
  auto series = ApplyNoise(*perfect, NoiseSpec::Replacement(0.3, 45));
  ASSERT_TRUE(series.ok());
  MinerOptions options;
  options.threshold = 0.3;
  options.max_period = 30;
  const PeriodicityTable table = FftConvolutionMiner(*series).Mine(options);
  auto significant = FilterSignificant(table, *series);
  ASSERT_TRUE(significant.ok());
  ASSERT_FALSE(significant->empty());
  // Every surviving entry sits at the planted period, and they are sorted by
  // ascending p-value.
  for (std::size_t i = 0; i < significant->size(); ++i) {
    EXPECT_EQ((*significant)[i].entry.period % 25, 0u);
    if (i > 0) {
      EXPECT_GE((*significant)[i].log_p_value,
                (*significant)[i - 1].log_p_value);
    }
  }
}

TEST(SignificanceTest, ValidatesArguments) {
  SymbolSeries empty(Alphabet::Latin(2));
  PeriodicityTable table;
  EXPECT_TRUE(FilterSignificant(table, empty).status().IsInvalidArgument());

  SymbolSeries tiny(Alphabet::Latin(2));
  tiny.Append(0);
  SignificanceOptions options;
  options.max_p_value = 0.0;
  EXPECT_TRUE(
      FilterSignificant(table, tiny, options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace periodica
