#include "periodica/util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace periodica {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status invalid = Status::InvalidArgument("bad input");
  EXPECT_FALSE(invalid.ok());
  EXPECT_TRUE(invalid.IsInvalidArgument());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(invalid.message(), "bad input");

  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").ToString(),
            "Invalid argument: bad");
  EXPECT_EQ(Status(StatusCode::kIOError, "").ToString(), "IO error");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "Not found: missing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int value) {
  if (value < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int value) {
  PERIODICA_RETURN_NOT_OK(FailIfNegative(value));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

}  // namespace
}  // namespace periodica
