// Corruption-corpus test (ISSUE 9 satellite): feeds systematically damaged
// PCHK checkpoint envelopes and store files — every truncation length,
// bit flips in header/body/CRC, version and kind skew — through the resume
// and recovery paths, asserting the decoder contract: a clean non-OK
// Status for damage, never a crash, UB (ASan/UBSan presets run this), or a
// silent success that resumes from garbage.

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "periodica/core/checkpoint.h"
#include "periodica/core/streaming_detector.h"
#include "periodica/series/alphabet.h"
#include "periodica/store/kv_store.h"
#include "periodica/util/crc32.h"

namespace periodica {
namespace {

/// A small but real detector whose envelope the corpus mutates.
StreamingPeriodDetector MakeDetector() {
  auto alphabet = Alphabet::FromNames({"a", "b", "c"});
  StreamingPeriodDetector::Options options;
  options.max_period = 8;
  options.block_size = 16;
  auto detector =
      StreamingPeriodDetector::Create(std::move(alphabet).ValueOrDie(),
                                      options);
  auto value = std::move(detector).ValueOrDie();
  for (int i = 0; i < 40; ++i) {
    value.Append(static_cast<SymbolId>(i % 3));
  }
  return value;
}

std::string Envelope() {
  static const std::string bytes =
      EncodeDetectorCheckpoint(MakeDetector()).ValueOrDie();
  return bytes;
}

/// The decode either cleanly rejects, or — when a mutation happens to keep
/// the envelope self-consistent, e.g. flipping the same information twice —
/// produces a detector; it must never die. Returns whether it was accepted.
bool DecodeSurvives(const std::string& bytes) {
  auto decoded = DecodeDetectorCheckpoint(bytes, "corpus");
  return decoded.ok();
}

TEST(CheckpointCorpusTest, EveryTruncationLengthIsRejected) {
  const std::string good = Envelope();
  for (std::size_t len = 0; len < good.size(); ++len) {
    auto decoded = DecodeDetectorCheckpoint(good.substr(0, len), "corpus");
    ASSERT_FALSE(decoded.ok()) << "truncation to " << len << " of "
                               << good.size() << " bytes decoded";
    EXPECT_TRUE(decoded.status().IsInvalidArgument())
        << "len=" << len << ": " << decoded.status();
  }
  // The unmutated envelope still decodes (the corpus baseline is valid).
  EXPECT_TRUE(DecodeSurvives(good));
}

TEST(CheckpointCorpusTest, EveryExtensionIsRejected) {
  const std::string good = Envelope();
  for (std::size_t extra : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    EXPECT_FALSE(DecodeSurvives(good + std::string(extra, '\0')))
        << "extension by " << extra << " bytes decoded";
  }
}

TEST(CheckpointCorpusTest, SingleBitFlipsNeverCrashAndAlmostAlwaysReject) {
  const std::string good = Envelope();
  // Every bit of the header and CRC, and a stride through the body (the
  // body CRC catches any of them; the stride keeps the test fast).
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 20 && i < good.size(); ++i) offsets.push_back(i);
  for (std::size_t i = 20; i + 4 < good.size(); i += 13) offsets.push_back(i);
  for (std::size_t i = good.size() - 4; i < good.size(); ++i) {
    offsets.push_back(i);
  }
  for (const std::size_t offset : offsets) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = good;
      mutated[offset] = static_cast<char>(
          static_cast<unsigned char>(mutated[offset]) ^ (1u << bit));
      auto decoded = DecodeDetectorCheckpoint(mutated, "corpus");
      // A single bit flip anywhere breaks the CRC (or the header checks
      // before it); exactly one envelope — the original — is acceptable.
      ASSERT_FALSE(decoded.ok())
          << "bit " << bit << " at offset " << offset << " decoded";
      EXPECT_TRUE(decoded.status().IsInvalidArgument())
          << "offset=" << offset << " bit=" << bit << ": "
          << decoded.status();
    }
  }
}

TEST(CheckpointCorpusTest, VersionSkewIsRejectedWithAPreciseMessage) {
  std::string mutated = Envelope();
  mutated[4] = 99;  // version field (offset 4, little-endian u32)
  // A version flip also breaks the CRC; re-sign so the *version check*
  // is what rejects: skew must fail even with a valid checksum, because a
  // future format may reuse the same framing around different fields.
  const std::string body = mutated.substr(0, mutated.size() - 4);
  const std::uint32_t crc = util::Crc32Of(body);
  for (int i = 0; i < 4; ++i) {
    mutated[mutated.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  auto decoded = DecodeDetectorCheckpoint(mutated, "corpus");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unsupported checkpoint version"),
            std::string::npos)
      << decoded.status();
}

TEST(CheckpointCorpusTest, KindSkewIsRejected) {
  std::string mutated = Envelope();
  mutated[8] = 2;  // kind field: claim OnlineTracker around detector fields
  const std::string body = mutated.substr(0, mutated.size() - 4);
  const std::uint32_t crc = util::Crc32Of(body);
  for (int i = 0; i < 4; ++i) {
    mutated[mutated.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  // Wrong-kind with a valid CRC: the typed decoder refuses...
  EXPECT_FALSE(DecodeSurvives(mutated));
  // ...and so does the tracker decoder — the detector field stream does not
  // parse as a tracker (and must not crash trying).
  EXPECT_FALSE(DecodeTrackerCheckpoint(mutated, "corpus").ok());
  // An unknown kind value is rejected before any field is read.
  mutated[8] = 77;
  EXPECT_FALSE(DecodeSurvives(mutated));
}

TEST(CheckpointCorpusTest, FileAndMemoryDecodersAgreeByteForByte) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("periodica_store_corruption_" + std::to_string(getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "snap.pchk").string();
  auto detector = MakeDetector();
  ASSERT_TRUE(SaveCheckpoint(detector, path).ok());
  std::ifstream file(path, std::ios::binary);
  const std::string on_disk{std::istreambuf_iterator<char>(file),
                            std::istreambuf_iterator<char>()};
  // SaveCheckpoint writes exactly the bytes EncodeDetectorCheckpoint
  // returns — the store and file persistence paths are one format.
  EXPECT_EQ(on_disk, Envelope());
  auto from_file = LoadDetectorCheckpoint(path);
  auto from_bytes = DecodeDetectorCheckpoint(on_disk, path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  ASSERT_TRUE(from_bytes.ok()) << from_bytes.status();
  EXPECT_EQ(from_file->size(), from_bytes->size());
  std::filesystem::remove_all(dir);
}

class StoreFileCorpusTest : public ::testing::Test {
 protected:
  std::string FreshDir(const std::string& tag) {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("periodica_store_file_corpus_" +
                      std::to_string(::getpid())) /
                     tag;
    std::filesystem::remove_all(dir);
    created_.push_back(dir);
    return dir.string();
  }

  /// Builds a store with data in every layer: segments, manifest, WAL.
  static void Populate(const std::string& dir) {
    auto kv = store::KvStore::Open({.dir = dir, .wal_rotate_bytes = 0})
                  .ValueOrDie();
    ASSERT_TRUE(kv->Put("segmented", "in segment").ok());
    ASSERT_TRUE(kv->Flush().ok());
    ASSERT_TRUE(kv->Put("walled", "in wal").ok());
  }

  static void FlipByte(const std::string& path, std::size_t offset) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good()) << path;
    file.seekg(static_cast<std::streamoff>(offset));
    const int byte = file.get();
    ASSERT_NE(byte, EOF);
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(static_cast<char>(byte ^ 0x5A));
  }

  void TearDown() override {
    for (const auto& dir : created_) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }

  std::vector<std::filesystem::path> created_;
};

TEST_F(StoreFileCorpusTest, BitFlippedManifestRefusesToOpen) {
  const std::string dir = FreshDir("manifest");
  Populate(dir);
  if (HasFatalFailure()) return;
  const std::uintmax_t size =
      std::filesystem::file_size(dir + "/MANIFEST");
  for (std::size_t offset = 0; offset < size; offset += 3) {
    FlipByte(dir + "/MANIFEST", offset);
    auto kv = store::KvStore::Open({.dir = dir});
    EXPECT_FALSE(kv.ok()) << "manifest flip at " << offset << " opened";
    if (kv.ok()) break;
    EXPECT_TRUE(kv.status().IsIOError()) << kv.status();
    FlipByte(dir + "/MANIFEST", offset);  // restore for the next offset
  }
  // Restored manifest opens clean — the corpus harness itself is sound.
  EXPECT_TRUE(store::KvStore::Open({.dir = dir}).ok());
}

TEST_F(StoreFileCorpusTest, BitFlippedSegmentIsNeverServed) {
  const std::string dir = FreshDir("segment");
  Populate(dir);
  if (HasFatalFailure()) return;
  std::string seg;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".pseg") seg = entry.path();
  }
  ASSERT_FALSE(seg.empty());
  const std::uintmax_t size = std::filesystem::file_size(seg);
  for (std::size_t offset = 0; offset < size; offset += 3) {
    FlipByte(seg, offset);
    // Strict policy: refuse to open.
    auto strict = store::KvStore::Open({.dir = dir});
    EXPECT_FALSE(strict.ok()) << "segment flip at " << offset << " opened";
    // Permissive policy: open, count the scrub error, and the damaged
    // segment's key is NotFound — never a garbled value.
    auto permissive =
        store::KvStore::Open({.dir = dir, .drop_corrupt_segments = true});
    ASSERT_TRUE(permissive.ok()) << permissive.status();
    EXPECT_EQ((*permissive)->GetStats().scrub_errors, 1u);
    auto got = (*permissive)->Get("segmented");
    EXPECT_TRUE(got.status().IsNotFound())
        << "offset " << offset << ": " << got.status();
    // The WAL layer is unaffected by segment damage.
    EXPECT_EQ((*permissive)->Get("walled").ValueOrDie(), "in wal");
    FlipByte(seg, offset);
  }
}

TEST_F(StoreFileCorpusTest, BitFlippedWalTailIsDiscardedNotServed) {
  const std::string dir = FreshDir("wal");
  Populate(dir);
  if (HasFatalFailure()) return;
  const std::string wal = dir + "/wal.log";
  const std::uintmax_t size = std::filesystem::file_size(wal);
  // Flip every byte after the 8-byte file header (the record frame and
  // body); each flip must yield either a rejected tail (key missing) or —
  // never — a wrong value.
  for (std::size_t offset = 8; offset < size; ++offset) {
    FlipByte(wal, offset);
    auto kv = store::KvStore::Open({.dir = dir});
    if (kv.ok()) {
      auto got = (*kv)->Get("walled");
      if (got.ok()) {
        EXPECT_EQ(*got, "in wal") << "offset " << offset << " garbled";
      } else {
        EXPECT_TRUE(got.status().IsNotFound()) << got.status();
      }
      // The segment layer is unaffected by WAL damage.
      EXPECT_EQ((*kv)->Get("segmented").ValueOrDie(), "in segment");
    }
    // Recovery may have truncated the flipped tail; rebuild for the next
    // offset rather than un-flipping.
    std::filesystem::remove_all(dir);
    Populate(dir);
    if (HasFatalFailure()) return;
  }
}

TEST_F(StoreFileCorpusTest, ForeignFilesAreRejectedNotCrashedOn) {
  // A WAL that is actually a checkpoint, a manifest that is actually text:
  // cross-format confusion must produce clean errors.
  const std::string dir = FreshDir("foreign");
  std::filesystem::create_directories(dir);
  {
    std::ofstream wal(dir + "/wal.log", std::ios::binary);
    wal << Envelope();
  }
  auto kv = store::KvStore::Open({.dir = dir});
  ASSERT_FALSE(kv.ok());
  EXPECT_TRUE(kv.status().IsIOError()) << kv.status();
  std::filesystem::remove(dir + "/wal.log");
  {
    std::ofstream manifest(dir + "/MANIFEST", std::ios::binary);
    manifest << "not a manifest at all";
  }
  auto kv2 = store::KvStore::Open({.dir = dir});
  ASSERT_FALSE(kv2.ok());
  EXPECT_TRUE(kv2.status().IsIOError()) << kv2.status();
}

}  // namespace
}  // namespace periodica
