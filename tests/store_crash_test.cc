// Crash-consistency torture for store::KvStore (ISSUE 9 acceptance
// criterion): at every registered store/* fault site, simulate a kill at
// every reachable hit of that site, "crash" (abandon the store object
// without cleanup, exactly what SIGKILL leaves on disk), recover, and
// assert the two durability invariants:
//
//   1. no acknowledged write is ever lost — if Put returned OK before the
//      crash, recovery serves exactly that value;
//   2. no corrupt record is ever served — an unacknowledged write may
//      surface (it reached the log) or vanish (it did not), but the value
//      read back is always either the exact bytes written or NotFound.
//
// tools/soak.sh stage 3 runs the same loop end-to-end through periodicad
// with real SIGKILL.

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "periodica/store/kv_store.h"
#include "periodica/util/fault_injector.h"

namespace periodica::store {
namespace {

const char* const kWriteSites[] = {
    "store/wal_append",
    "store/wal_fsync",
    "store/segment_write",
    "store/manifest_rename",
};

class StoreCrashTest : public ::testing::Test {
 protected:
  std::string FreshDir(const std::string& tag) {
    const auto dir =
        std::filesystem::temp_directory_path() /
        ("periodica_store_crash_test_" + std::to_string(::getpid())) / tag;
    std::filesystem::remove_all(dir);
    created_.push_back(dir);
    return dir.string();
  }

  void TearDown() override {
    for (const auto& dir : created_) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }

  std::vector<std::filesystem::path> created_;
};

std::string ValueFor(int i) {
  return "value-" + std::to_string(i) + "-" + std::string(1 + i % 37, 'x');
}

/// One torture trial: write through an armed fault, crash at the failure,
/// recover, verify. Returns true when the fault actually fired (so the
/// caller knows when `nth` has walked past every reachable hit).
bool RunTrial(const std::string& dir, const char* site, std::uint64_t nth) {
  // Tiny rotation threshold so every trial exercises segment and manifest
  // churn, not just the WAL.
  KvStore::Options options{.dir = dir, .wal_rotate_bytes = 96,
                           .max_segments = 2};
  // Per key: the index of the last *acknowledged* write (-1 = never acked).
  // The durability invariant per key is then: recovery serves ValueFor(j)
  // for some attempted write j to that key with j >= last acked — an
  // unacknowledged later write may legitimately surface (it reached the
  // log), but an acked write can never be shadowed by anything older, lost,
  // or replaced by bytes that were never written.
  int last_acked[8];
  for (int& index : last_acked) index = -1;
  bool fired = false;
  {
    auto opened = KvStore::Open(options);
    if (!opened.ok()) {
      ADD_FAILURE() << "fresh open: " << opened.status();
      return false;
    }
    auto kv = std::move(opened).ValueOrDie();
    util::ScopedFault fault(site, Status::IOError("injected crash"),
                            /*fire_on_nth=*/nth);
    for (int i = 0; i < 24; ++i) {
      const std::string key = "key-" + std::to_string(i % 8);
      const Status put = kv->Put(key, ValueFor(i));
      if (put.ok()) {
        last_acked[i % 8] = i;
      } else {
        break;  // the simulated kill: stop driving, abandon the object
      }
    }
    fired = fault.fire_count() > 0;
    // `kv` is destroyed without any orderly shutdown — its destructor only
    // closes the fd, which is what the kernel does on SIGKILL too.
  }

  // Recovery must succeed and uphold the invariant for every key.
  auto reopened = KvStore::Open(options);
  if (!reopened.ok()) {
    ADD_FAILURE() << "recovery open: " << reopened.status();
    return fired;
  }
  auto kv = std::move(reopened).ValueOrDie();
  EXPECT_EQ(kv->GetStats().scrub_errors, 0u);
  for (int k = 0; k < 8; ++k) {
    const std::string key = "key-" + std::to_string(k);
    auto got = kv->Get(key);
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsNotFound()) << got.status();
      EXPECT_LT(last_acked[k], 0)
          << "acked key '" << key << "' lost: " << got.status();
      continue;
    }
    bool legitimate = false;
    for (int i = k; i < 24; i += 8) {
      if (i >= last_acked[k] && *got == ValueFor(i)) legitimate = true;
    }
    EXPECT_TRUE(legitimate) << "key '" << key
                            << "' recovered a value that is stale or was "
                               "never written: "
                            << got->substr(0, 40);
  }
  // The recovered store is fully writable again.
  EXPECT_TRUE(kv->Put("post-recovery", "alive").ok());
  return fired;
}

TEST_F(StoreCrashTest, EveryWriteSiteEveryHit) {
  for (const char* site : kWriteSites) {
    // Walk the fault through every hit the workload reaches: nth=1 crashes
    // the first append, larger nth crash deeper into rotations and
    // compactions, until a trial no longer fires (workload exhausted).
    bool fired_any = false;
    bool fired = true;
    for (std::uint64_t nth = 1; fired && nth <= 64; ++nth) {
      const std::string tag =
          std::string(site).substr(std::string(site).find('/') + 1) + "-" +
          std::to_string(nth);
      SCOPED_TRACE(tag);
      fired = RunTrial(FreshDir(tag), site, nth);
      fired_any |= fired;
      if (HasFailure()) return;
    }
    // Sanity: every site is actually on the workload's path.
    EXPECT_TRUE(fired_any) << site << " never fired — dead torture loop";
  }
}

TEST_F(StoreCrashTest, PhysicalTornTailIsDiscarded) {
  const std::string dir = FreshDir("torn-tail");
  {
    auto kv = KvStore::Open({.dir = dir}).ValueOrDie();
    ASSERT_TRUE(kv->Put("acked", "survives").ok());
    ASSERT_TRUE(kv->Put("victim", "whole record about to be cut").ok());
  }
  // Chop bytes off the WAL tail — the raw effect of a kill mid-write —
  // and verify recovery at every truncation point between the two records.
  const std::string wal = dir + "/wal.log";
  const auto full_size = std::filesystem::file_size(wal);
  for (std::uintmax_t cut = full_size - 1; cut > 8; cut -= 7) {
    std::filesystem::resize_file(wal, cut);
    auto kv = KvStore::Open({.dir = dir});
    ASSERT_TRUE(kv.ok()) << "cut=" << cut << ": " << kv.status();
    auto got = (*kv)->Get("acked");
    // Cutting into the *first* record may legitimately lose it (it is no
    // longer acknowledged state on this disk); it must never be garbled.
    if (got.ok()) {
      EXPECT_EQ(*got, "survives") << "cut=" << cut;
    } else {
      EXPECT_TRUE(got.status().IsNotFound()) << "cut=" << cut;
    }
    auto victim = (*kv)->Get("victim");
    if (victim.ok()) {
      EXPECT_EQ(*victim, "whole record about to be cut") << "cut=" << cut;
    } else {
      EXPECT_TRUE(victim.status().IsNotFound()) << "cut=" << cut;
    }
  }
}

TEST_F(StoreCrashTest, ReadFaultAtRecoveryIsACleanError) {
  const std::string dir = FreshDir("read-fault");
  {
    auto kv = KvStore::Open({.dir = dir, .wal_rotate_bytes = 0})
                  .ValueOrDie();
    ASSERT_TRUE(kv->Put("key", "value").ok());
    ASSERT_TRUE(kv->Flush().ok());
  }
  // Fail each of the recovery reads (manifest, segment, WAL) in turn.
  for (std::uint64_t nth = 1; nth <= 3; ++nth) {
    util::ScopedFault fault("store/read", Status::IOError("injected"), nth);
    auto kv = KvStore::Open({.dir = dir, .wal_rotate_bytes = 0});
    ASSERT_FALSE(kv.ok()) << "nth=" << nth;
    EXPECT_TRUE(kv.status().IsIOError()) << "nth=" << nth;
  }
  // And with no fault armed the same directory opens fine.
  auto kv = KvStore::Open({.dir = dir, .wal_rotate_bytes = 0});
  ASSERT_TRUE(kv.ok()) << kv.status();
  EXPECT_EQ((*kv)->Get("key").ValueOrDie(), "value");
}

TEST_F(StoreCrashTest, CrashDuringAtomicSegmentWriteLeavesOldViewIntact) {
  // The segment/manifest files go through util::AtomicWriteFile; its own
  // torn-temp fault composes with the store: a kill mid-segment-write
  // leaves a .tmp corpse the store never reads.
  const std::string dir = FreshDir("atomic-compose");
  KvStore::Options options{.dir = dir, .wal_rotate_bytes = 0};
  {
    auto kv = KvStore::Open(options).ValueOrDie();
    ASSERT_TRUE(kv->Put("key", "value").ok());
    util::ScopedFault fault("atomic_file/write",
                            Status::IOError("injected kill"));
    EXPECT_FALSE(kv->Flush().ok());
  }
  auto kv = KvStore::Open(options);
  ASSERT_TRUE(kv.ok()) << kv.status();
  EXPECT_EQ((*kv)->Get("key").ValueOrDie(), "value");
  EXPECT_EQ((*kv)->GetStats().segments, 0u);
}

}  // namespace
}  // namespace periodica::store
