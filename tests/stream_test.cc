#include "periodica/series/stream.h"

#include <gtest/gtest.h>

namespace periodica {
namespace {

TEST(VectorStreamTest, YieldsAllSymbolsOnce) {
  auto series = SymbolSeries::FromString("abca");
  ASSERT_TRUE(series.ok());
  VectorStream stream(*series);
  std::vector<SymbolId> seen;
  while (const auto symbol = stream.Next()) seen.push_back(*symbol);
  EXPECT_EQ(seen, (std::vector<SymbolId>{0, 1, 2, 0}));
  // Exhausted stream stays exhausted.
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(VectorStreamTest, CarriesAlphabet) {
  auto series = SymbolSeries::FromString("abc");
  ASSERT_TRUE(series.ok());
  VectorStream stream(*series);
  EXPECT_EQ(stream.alphabet().size(), 3u);
}

TEST(FunctionStreamTest, GeneratesFromCallable) {
  int remaining = 5;
  FunctionStream stream(Alphabet::Latin(2),
                        [&remaining]() -> std::optional<SymbolId> {
                          if (remaining == 0) return std::nullopt;
                          --remaining;
                          return static_cast<SymbolId>(remaining % 2);
                        });
  const SymbolSeries collected = CollectStream(&stream);
  EXPECT_EQ(collected.size(), 5u);
  EXPECT_EQ(collected.ToString(), "ababa");
}

TEST(CollectStreamTest, RoundTripsSeries) {
  auto series = SymbolSeries::FromString("abcabbabcb");
  ASSERT_TRUE(series.ok());
  VectorStream stream(*series);
  EXPECT_EQ(CollectStream(&stream), *series);
}

TEST(CollectStreamTest, EmptyStream) {
  SymbolSeries empty(Alphabet::Latin(1));
  VectorStream stream(empty);
  EXPECT_TRUE(CollectStream(&stream).empty());
}

}  // namespace
}  // namespace periodica
