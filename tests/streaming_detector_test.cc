#include "periodica/core/streaming_detector.h"

#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "periodica/core/fft_miner.h"
#include "periodica/gen/synthetic.h"
#include "periodica/util/rng.h"

namespace periodica {
namespace {

SymbolSeries RandomSeries(std::size_t n, std::size_t sigma,
                          std::uint64_t seed) {
  Rng rng(seed);
  SymbolSeries series(Alphabet::Latin(sigma));
  series.Reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.Append(static_cast<SymbolId>(rng.UniformInt(sigma)));
  }
  return series;
}

TEST(StreamingDetectorTest, ValidatesArguments) {
  EXPECT_TRUE(StreamingPeriodDetector::Create(Alphabet(), {.max_period = 5})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      StreamingPeriodDetector::Create(Alphabet::Latin(2), {.max_period = 0})
          .status()
          .IsInvalidArgument());
}

TEST(StreamingDetectorTest, EmptyStreamDetectsNothing) {
  auto detector =
      StreamingPeriodDetector::Create(Alphabet::Latin(2), {.max_period = 10});
  ASSERT_TRUE(detector.ok());
  EXPECT_TRUE(detector->Detect(0.5).summaries().empty());
}

// The core property: the streaming detector over bounded memory equals the
// FFT engine's periods-only mode on the same data.
class StreamingEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, double, std::uint64_t>> {};

TEST_P(StreamingEquivalence, EqualsFftPeriodsOnlyMode) {
  const auto [n, max_period, threshold, seed] = GetParam();
  SyntheticSpec spec;
  spec.length = n;
  spec.alphabet_size = 6;
  spec.period = 13;
  spec.seed = seed;
  auto perfect = GeneratePerfect(spec);
  ASSERT_TRUE(perfect.ok());
  auto series = ApplyNoise(*perfect, NoiseSpec::Replacement(0.25, seed + 1));
  ASSERT_TRUE(series.ok());

  auto detector = StreamingPeriodDetector::Create(
      series->alphabet(),
      {.max_period = max_period, .block_size = 97});  // odd block on purpose
  ASSERT_TRUE(detector.ok());
  VectorStream stream(*series);
  ASSERT_TRUE(detector->Consume(&stream).ok());
  const PeriodicityTable streamed = detector->Detect(threshold);

  MinerOptions options;
  options.threshold = threshold;
  options.max_period = max_period;
  options.positions = false;
  const PeriodicityTable reference =
      FftConvolutionMiner(*series).Mine(options);

  ASSERT_EQ(streamed.summaries().size(), reference.summaries().size());
  for (std::size_t i = 0; i < reference.summaries().size(); ++i) {
    EXPECT_EQ(streamed.summaries()[i], reference.summaries()[i])
        << "summary " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamingEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(200, 1000, 4096),
                       ::testing::Values<std::size_t>(20, 64),
                       ::testing::Values(0.3, 0.7),
                       ::testing::Values<std::uint64_t>(21, 22)));

TEST(StreamingDetectorTest, DetectIsRepeatableAndAppendContinues) {
  const SymbolSeries series = RandomSeries(600, 3, 30);
  auto detector =
      StreamingPeriodDetector::Create(series.alphabet(), {.max_period = 30});
  ASSERT_TRUE(detector.ok());
  for (std::size_t i = 0; i < 300; ++i) detector->Append(series[i]);
  const auto mid_a = detector->Detect(0.3);
  const auto mid_b = detector->Detect(0.3);
  ASSERT_EQ(mid_a.summaries().size(), mid_b.summaries().size());
  for (std::size_t i = 0; i < mid_a.summaries().size(); ++i) {
    EXPECT_EQ(mid_a.summaries()[i], mid_b.summaries()[i]);
  }
  for (std::size_t i = 300; i < series.size(); ++i) {
    detector->Append(series[i]);
  }
  EXPECT_EQ(detector->size(), series.size());
}

TEST(StreamingDetectorTest, PerfectPeriodDetectedWithConfidenceOne) {
  SyntheticSpec spec;
  spec.length = 2000;
  spec.alphabet_size = 8;
  spec.period = 25;
  spec.seed = 33;
  auto series = GeneratePerfect(spec);
  ASSERT_TRUE(series.ok());
  auto detector =
      StreamingPeriodDetector::Create(series->alphabet(), {.max_period = 60});
  ASSERT_TRUE(detector.ok());
  for (std::size_t i = 0; i < series->size(); ++i) {
    detector->Append((*series)[i]);
  }
  const PeriodicityTable table = detector->Detect(0.9);
  const PeriodSummary* summary = table.FindPeriod(25);
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->aggregate_only);
  EXPECT_DOUBLE_EQ(summary->best_confidence, 1.0);
  ASSERT_NE(table.FindPeriod(50), nullptr);
}

TEST(StreamingDetectorTest, MinPairsFiltersShortEvidence) {
  SymbolSeries series(Alphabet::Latin(2));
  for (int i = 0; i < 40; ++i) series.Append(static_cast<SymbolId>(i % 2));
  auto detector =
      StreamingPeriodDetector::Create(series.alphabet(), {.max_period = 18});
  ASSERT_TRUE(detector.ok());
  for (std::size_t i = 0; i < series.size(); ++i) {
    detector->Append(series[i]);
  }
  // Period 16: floor evidence is 40/16 - 1 ~ 2 pairs.
  EXPECT_NE(detector->Detect(0.5, 1, 1).FindPeriod(16), nullptr);
  EXPECT_EQ(detector->Detect(0.5, 1, 5).FindPeriod(16), nullptr);
}

}  // namespace
}  // namespace periodica
