#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>

#include <gtest/gtest.h>

#include "periodica/util/cancellation.h"
#include "periodica/util/job_queue.h"
#include "periodica/util/memory_budget.h"
#include "periodica/util/sync.h"

namespace periodica::util {
namespace {

// Cross-component stress: concurrent JobQueue enqueue/drain racing
// MemoryBudget charge/release racing a CancellationToken firing mid-run.
// The point is not any single component (each has its own unit test) but
// the interleavings *between* them — exactly what the tsan ctest preset
// exists to exercise and what the Clang thread-safety annotations claim to
// rule out statically. Invariants checked at the end:
//
//   * accounting closes: accepted + rejected == submitted, and every
//     accepted job completed (Drain leaves nothing behind);
//   * the budget returns to zero: every successful TryReserve was paired
//     with a Release even for jobs cancelled mid-flight;
//   * the high-water mark never exceeded the limit.
TEST(SyncStressTest, QueueBudgetCancellationStorm) {
  JobQueue::Options options;
  options.num_threads = 4;
  options.max_queue_depth = 64;
  JobQueue queue(options);

  constexpr std::size_t kBudgetBytes = 1 << 20;  // 1 MiB
  MemoryBudget budget(kBudgetBytes);
  CancellationToken token;

  constexpr int kProducers = 4;
  constexpr int kJobsPerProducer = 200;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> reservation_failures{0};
  std::atomic<std::uint64_t> cancelled_jobs{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kJobsPerProducer; ++i) {
        // Deterministic per-job charge, 16 KiB .. 128 KiB: small enough
        // that several jobs fit, big enough that 4 workers contend.
        const std::size_t bytes =
            std::size_t{16 << 10} << ((p + i) % 4);
        const auto priority = static_cast<JobQueue::Priority>(i % 3);
        const Status status = queue.TrySubmit(priority, [&, bytes] {
          executed.fetch_add(1);
          if (token.Expired()) {
            cancelled_jobs.fetch_add(1);
            return;  // cancelled before charging: nothing to release
          }
          if (!budget.TryReserve(bytes, "stress-job").ok()) {
            reservation_failures.fetch_add(1);
            return;
          }
          // Hold the reservation across a few scheduling points so
          // charge/release genuinely overlaps other jobs and the token.
          for (int spin = 0; spin < 3 && !token.Expired(); ++spin) {
            std::this_thread::yield();
          }
          budget.Release(bytes);
        });
        if (status.ok()) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
          ASSERT_TRUE(status.IsUnavailable()) << status.ToString();
        }
      }
    });
  }

  // Fire the cancellation storm mid-flood, while producers are still
  // submitting and workers are mid-charge.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.RequestCancel();

  for (auto& producer : producers) producer.join();
  queue.Drain();

  const std::uint64_t submitted =
      static_cast<std::uint64_t>(kProducers) * kJobsPerProducer;
  EXPECT_EQ(accepted.load() + rejected.load(), submitted)
      << "a submission vanished without an accept or a structured reject";
  EXPECT_EQ(executed.load(), accepted.load())
      << "Drain returned with accepted jobs unrun";

  const JobQueue::Stats stats = queue.GetStats();
  EXPECT_EQ(stats.accepted, accepted.load());
  EXPECT_EQ(stats.completed, accepted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.running, 0u);

  EXPECT_EQ(budget.used(), 0u)
      << "a reservation leaked through the cancellation storm";
  EXPECT_LE(budget.high_water(), kBudgetBytes);
}

}  // namespace
}  // namespace periodica::util
