#include "periodica/util/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace periodica::util {
namespace {

// The wrappers are deliberately thin veneers over the standard primitives;
// these tests pin down the runtime semantics the rest of the suite (and the
// Clang thread-safety annotations) assume: mutual exclusion, try-lock
// contracts, shared/exclusive compatibility, RAII release and CondVar
// wakeups. They run under the tsan preset like every other test, so a
// wrapper bug would surface as a data race, not just a failed expectation.

TEST(MutexTest, ProvidesMutualExclusion) {
  class Counter {
   public:
    void Add() PERIODICA_EXCLUDES(mutex_) {
      MutexLock lock(&mutex_);
      // A read-modify-write wide enough for lost updates to show up if the
      // lock were a no-op.
      const int before = value_;
      std::this_thread::yield();
      value_ = before + 1;
    }
    int value() PERIODICA_EXCLUDES(mutex_) {
      MutexLock lock(&mutex_);
      return value_;
    }

   private:
    Mutex mutex_;
    int value_ PERIODICA_GUARDED_BY(mutex_) = 0;
  };

  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  {
    MutexLock lock(&mutex);
    std::atomic<bool> acquired{true};
    // TryLock must be exercised from another thread: self-try_lock on a held
    // std::mutex is undefined behavior.
    std::thread prober([&mutex, &acquired] {
      const bool got = mutex.TryLock();
      acquired.store(got);
      if (got) mutex.Unlock();
    });
    prober.join();
    EXPECT_FALSE(acquired.load());
  }
  ASSERT_TRUE(mutex.TryLock());  // MutexLock released at scope exit
  mutex.Unlock();
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mutex;
  {
    ReaderLock reader(&mutex);
    // A second reader on another thread gets in while we hold shared access.
    std::atomic<bool> second_reader_entered{false};
    std::thread other([&mutex, &second_reader_entered] {
      ReaderLock nested(&mutex);
      second_reader_entered.store(true);
    });
    other.join();  // would deadlock if readers excluded each other
    EXPECT_TRUE(second_reader_entered.load());

    // But a writer must not: exclusive try_lock fails under a reader.
    std::atomic<bool> writer_entered{false};
    std::thread writer([&mutex, &writer_entered] {
      const bool got = mutex.TryLock();
      writer_entered.store(got);
      if (got) mutex.Unlock();
    });
    writer.join();
    EXPECT_FALSE(writer_entered.load());
  }
  {
    WriterLock writer(&mutex);
    std::atomic<bool> entered{false};
    std::thread prober([&mutex, &entered] {
      const bool got = mutex.TryLock();
      entered.store(got);
      if (got) mutex.Unlock();
    });
    prober.join();
    EXPECT_FALSE(entered.load()) << "second writer entered under WriterLock";
  }
  ASSERT_TRUE(mutex.TryLock());  // WriterLock released at scope exit
  mutex.Unlock();
}

TEST(CondVarTest, WaitWakesOnNotifyOne) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread waiter([&] {
    MutexLock lock(&mutex);
    while (!ready) cv.Wait(mutex);
    observed = 42;
  });
  // Let the waiter park (best effort; correctness does not depend on it —
  // notify-before-wait is covered by the predicate loop).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(&mutex);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool open = false;
  int released = 0;

  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mutex);
      while (!open) cv.Wait(mutex);
      ++released;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(&mutex);
    open = true;
  }
  cv.NotifyAll();
  for (auto& thread : waiters) thread.join();
  MutexLock lock(&mutex);
  EXPECT_EQ(released, kWaiters);
}

TEST(CondVarTest, WaitReleasesTheMutexWhileBlocked) {
  // If Wait failed to release the mutex, the opener below could never
  // acquire it and the test would deadlock instead of finishing.
  Mutex mutex;
  CondVar cv;
  bool done = false;

  std::thread waiter([&] {
    MutexLock lock(&mutex);
    while (!done) cv.Wait(mutex);
  });
  std::thread opener([&] {
    for (;;) {
      {
        MutexLock lock(&mutex);
        done = true;
      }
      cv.NotifyOne();
      return;
    }
  });
  waiter.join();
  opener.join();
}

}  // namespace
}  // namespace periodica::util
