#include "periodica/gen/synthetic.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace periodica {
namespace {

TEST(SyntheticTest, PerfectDataRepeatsPattern) {
  SyntheticSpec spec;
  spec.length = 100;
  spec.alphabet_size = 10;
  spec.period = 7;
  spec.seed = 3;
  auto series = GeneratePerfect(spec);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 100u);
  for (std::size_t i = 0; i + 7 < series->size(); ++i) {
    EXPECT_EQ((*series)[i], (*series)[i + 7]) << "position " << i;
  }
}

TEST(SyntheticTest, PatternHasRequestedLength) {
  SyntheticSpec spec;
  spec.period = 25;
  auto pattern = GeneratePattern(spec);
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern->size(), 25u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.length = 200;
  spec.period = 13;
  spec.seed = 42;
  auto a = GeneratePerfect(spec);
  auto b = GeneratePerfect(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  spec.seed = 43;
  auto c = GeneratePerfect(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(*a == *c);
}

TEST(SyntheticTest, NormalDistributionFavorsMiddleSymbols) {
  SyntheticSpec spec;
  spec.length = 0;
  spec.period = 20000;
  spec.alphabet_size = 10;
  spec.distribution = SymbolDistribution::kNormal;
  auto pattern = GeneratePattern(spec);
  ASSERT_TRUE(pattern.ok());
  std::vector<int> histogram(10, 0);
  for (std::size_t i = 0; i < pattern->size(); ++i) {
    ++histogram[(*pattern)[i]];
  }
  // Middle symbols (4, 5) should clearly dominate the extremes (0, 9): with
  // stddev sigma/4 the middle two levels carry ~30% of the mass vs ~11% for
  // the clamped tails.
  EXPECT_GT(histogram[4] + histogram[5], 2 * (histogram[0] + histogram[9]));
}

TEST(SyntheticTest, UniformDistributionIsFlat) {
  SyntheticSpec spec;
  spec.period = 50000;
  spec.alphabet_size = 5;
  auto pattern = GeneratePattern(spec);
  ASSERT_TRUE(pattern.ok());
  std::vector<int> histogram(5, 0);
  for (std::size_t i = 0; i < pattern->size(); ++i) ++histogram[(*pattern)[i]];
  for (const int count : histogram) {
    EXPECT_NEAR(count, 10000, 5 * std::sqrt(10000.0));
  }
}

TEST(SyntheticTest, LargeAlphabetGetsNumberedNames) {
  SyntheticSpec spec;
  spec.alphabet_size = 30;
  spec.period = 10;
  auto pattern = GeneratePattern(spec);
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern->alphabet().size(), 30u);
  EXPECT_EQ(pattern->alphabet().name(0), "s0");
  EXPECT_EQ(pattern->alphabet().name(29), "s29");
}

TEST(SyntheticTest, InvalidSpecRejected) {
  SyntheticSpec spec;
  spec.period = 0;
  EXPECT_TRUE(GeneratePerfect(spec).status().IsInvalidArgument());
  spec.period = 5;
  spec.alphabet_size = 0;
  EXPECT_TRUE(GeneratePerfect(spec).status().IsInvalidArgument());
}

SymbolSeries MakePerfect(std::size_t length, std::size_t period,
                         std::uint64_t seed) {
  SyntheticSpec spec;
  spec.length = length;
  spec.period = period;
  spec.seed = seed;
  auto series = GeneratePerfect(spec);
  EXPECT_TRUE(series.ok());
  return std::move(series).ValueOrDie();
}

TEST(NoiseTest, ZeroRatioIsIdentity) {
  const SymbolSeries series = MakePerfect(500, 25, 1);
  auto noisy = ApplyNoise(series, NoiseSpec::Replacement(0.0));
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(*noisy, series);
}

TEST(NoiseTest, ReplacementPreservesLengthAndChangesSymbols) {
  const SymbolSeries series = MakePerfect(10000, 25, 1);
  auto noisy = ApplyNoise(series, NoiseSpec::Replacement(0.2, 99));
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), series.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if ((*noisy)[i] != series[i]) ++changed;
  }
  // Replacement always picks a *different* symbol, so the changed fraction
  // tracks the ratio directly.
  EXPECT_NEAR(static_cast<double>(changed) / series.size(), 0.2, 0.02);
}

TEST(NoiseTest, InsertionGrowsSeries) {
  const SymbolSeries series = MakePerfect(10000, 25, 2);
  auto noisy = ApplyNoise(series, NoiseSpec::Insertion(0.1, 7));
  ASSERT_TRUE(noisy.ok());
  EXPECT_NEAR(static_cast<double>(noisy->size()), 11000.0, 150.0);
}

TEST(NoiseTest, DeletionShrinksSeries) {
  const SymbolSeries series = MakePerfect(10000, 25, 3);
  auto noisy = ApplyNoise(series, NoiseSpec::Deletion(0.1, 7));
  ASSERT_TRUE(noisy.ok());
  EXPECT_NEAR(static_cast<double>(noisy->size()), 9000.0, 150.0);
}

TEST(NoiseTest, CombinedInsertionDeletionRoughlyPreservesLength) {
  const SymbolSeries series = MakePerfect(20000, 32, 4);
  auto noisy = ApplyNoise(
      series, NoiseSpec::Combined(0.2, /*r=*/false, /*i=*/true, /*d=*/true));
  ASSERT_TRUE(noisy.ok());
  EXPECT_NEAR(static_cast<double>(noisy->size()), 20000.0, 400.0);
}

TEST(NoiseTest, InvalidSpecsRejected) {
  const SymbolSeries series = MakePerfect(100, 10, 5);
  EXPECT_TRUE(
      ApplyNoise(series, NoiseSpec::Replacement(-0.1)).status().IsInvalidArgument());
  EXPECT_TRUE(
      ApplyNoise(series, NoiseSpec::Replacement(1.5)).status().IsInvalidArgument());
  NoiseSpec none;
  none.ratio = 0.5;  // ratio without any enabled kind
  EXPECT_TRUE(ApplyNoise(series, none).status().IsInvalidArgument());
}

TEST(NoiseTest, DeterministicForSeed) {
  const SymbolSeries series = MakePerfect(1000, 25, 6);
  auto a = ApplyNoise(series, NoiseSpec::Combined(0.3, true, true, true, 11));
  auto b = ApplyNoise(series, NoiseSpec::Combined(0.3, true, true, true, 11));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace periodica
