#include "periodica/util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace periodica {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  TextTable table({"Period", "Confidence"});
  table.AddRow({"25", "1.000"});
  table.AddRow({"168", "0.700"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Period | Confidence"), std::string::npos);
  EXPECT_NE(out.find("25"), std::string::npos);
  EXPECT_NE(out.find("168"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, NumRows) {
  TextTable table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"x"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, WideCellsStretchColumn) {
  TextTable table({"x", "y"});
  table.AddRow({"aaaaaaaaaa", "1"});
  std::ostringstream os;
  table.Print(os);
  // Header cell padded to the widest row cell.
  const std::string first_line = os.str().substr(0, os.str().find('\n'));
  EXPECT_EQ(first_line.find('|'), std::string("aaaaaaaaaa").size() + 1);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5), "0.500");
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.1, 1), "-0.1");
}

TEST(FormatTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1024), "1.0 KB");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(2 * 1024 * 1024), "2.0 MB");
}

TEST(FormatTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

}  // namespace
}  // namespace periodica
