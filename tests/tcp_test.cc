// Tests for the TCP transport helpers (util/tcp.h): endpoint parsing,
// listen/accept/connect round trips in both the blocking and the
// event-loop (non-blocking start/finish) shapes, UniqueFd ownership, and
// the tcp/accept + tcp/connect fault-injection sites.

#include "periodica/util/tcp.h"

#include <poll.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "../tools/unix_socket.h"
#include "periodica/util/fault_injector.h"

namespace periodica::util {
namespace {

TEST(ParseHostPortTest, SplitsOnLastColon) {
  const Result<TcpEndpoint> endpoint = ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(endpoint.ok()) << endpoint.status().ToString();
  EXPECT_EQ(endpoint.value().host, "127.0.0.1");
  EXPECT_EQ(endpoint.value().port, 8080);
}

TEST(ParseHostPortTest, HostNamesAndEphemeralPort) {
  const Result<TcpEndpoint> endpoint = ParseHostPort("localhost:0");
  ASSERT_TRUE(endpoint.ok());
  EXPECT_EQ(endpoint.value().host, "localhost");
  EXPECT_EQ(endpoint.value().port, 0);
}

TEST(ParseHostPortTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseHostPort("").ok());
  EXPECT_FALSE(ParseHostPort("nohost").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort(":1234").ok());
  EXPECT_FALSE(ParseHostPort("host:notaport").ok());
  EXPECT_FALSE(ParseHostPort("host:70000").ok());
  EXPECT_FALSE(ParseHostPort("host:-1").ok());
}

TEST(UniqueFdTest, OwnsAndMoves) {
  UniqueFd invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid.get(), -1);

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  UniqueFd a(pipe_fds[0]);
  UniqueFd b(pipe_fds[1]);
  EXPECT_TRUE(a.valid());

  UniqueFd moved = std::move(a);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserted empty

  const int raw = moved.release();
  EXPECT_FALSE(moved.valid());
  EXPECT_EQ(raw, pipe_fds[0]);
  ::close(raw);

  b.Close();
  EXPECT_FALSE(b.valid());
  b.Close();  // idempotent
}

TEST(TcpTest, ListenPicksEphemeralPortAndReportsIt) {
  std::uint16_t bound_port = 0;
  Result<UniqueFd> listener = TcpListen("127.0.0.1", 0, 8, &bound_port);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(bound_port, 0);
}

TEST(TcpTest, BlockingConnectRoundTrip) {
  std::uint16_t port = 0;
  Result<UniqueFd> listener = TcpListen("127.0.0.1", 0, 8, &port);
  ASSERT_TRUE(listener.ok());

  Result<UniqueFd> client = TcpConnectBlocking("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // The listener is non-blocking; the connection is already queued.
  Result<UniqueFd> accepted = TcpAccept(listener.value().get());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();

  // Bytes flow both ways through the shared framing helpers.
  ASSERT_TRUE(
      tools::SendLine(client.value().get(), R"({"hello":true})").ok());
  tools::LineBuffer buffer;
  // The accepted socket is non-blocking: drain until the line arrives.
  std::optional<std::string> line;
  for (int i = 0; i < 1000 && !line.has_value(); ++i) {
    const Result<bool> eof =
        tools::DrainReadable(accepted.value().get(), &buffer);
    ASSERT_TRUE(eof.ok());
    ASSERT_FALSE(eof.value());
    line = buffer.NextLine();
  }
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, R"({"hello":true})");
}

TEST(TcpTest, AcceptWithNothingPendingIsUnavailable) {
  std::uint16_t port = 0;
  Result<UniqueFd> listener = TcpListen("127.0.0.1", 0, 8, &port);
  ASSERT_TRUE(listener.ok());
  const Result<UniqueFd> accepted = TcpAccept(listener.value().get());
  ASSERT_FALSE(accepted.ok());
  EXPECT_TRUE(accepted.status().IsUnavailable());
}

TEST(TcpTest, NonBlockingConnectFinishesViaWritability) {
  std::uint16_t port = 0;
  Result<UniqueFd> listener = TcpListen("127.0.0.1", 0, 8, &port);
  ASSERT_TRUE(listener.ok());

  bool connected = false;
  Result<UniqueFd> client = TcpConnectStart("127.0.0.1", port, &connected);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  if (!connected) {
    // Wait for writability the way the event loop would, then harvest.
    struct pollfd pfd = {client.value().get(), POLLOUT, 0};
    ASSERT_GT(::poll(&pfd, 1, 5000), 0);
    const Status finished = TcpConnectFinish(client.value().get());
    ASSERT_TRUE(finished.ok()) << finished.ToString();
    connected = true;
  }
  EXPECT_TRUE(connected);
  const Result<UniqueFd> accepted = TcpAccept(listener.value().get());
  EXPECT_TRUE(accepted.ok());
}

TEST(TcpTest, ConnectToDeadPortFails) {
  // Grab an ephemeral port, then close the listener: connects must fail.
  std::uint16_t port = 0;
  {
    Result<UniqueFd> listener = TcpListen("127.0.0.1", 0, 8, &port);
    ASSERT_TRUE(listener.ok());
  }
  const Result<UniqueFd> client = TcpConnectBlocking("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

TEST(TcpFaultTest, InjectedConnectFaultFails) {
  std::uint16_t port = 0;
  Result<UniqueFd> listener = TcpListen("127.0.0.1", 0, 8, &port);
  ASSERT_TRUE(listener.ok());

  ScopedFault fault("tcp/connect", Status::IOError("injected"));
  const Result<UniqueFd> client = TcpConnectBlocking("127.0.0.1", port);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(fault.fire_count(), 1u);

  // Disarmed (next hit is past fire_on_nth with repeat off): connect works.
  const Result<UniqueFd> retry = TcpConnectBlocking("127.0.0.1", port);
  EXPECT_TRUE(retry.ok());
}

TEST(TcpFaultTest, InjectedAcceptFaultFails) {
  std::uint16_t port = 0;
  Result<UniqueFd> listener = TcpListen("127.0.0.1", 0, 8, &port);
  ASSERT_TRUE(listener.ok());
  Result<UniqueFd> client = TcpConnectBlocking("127.0.0.1", port);
  ASSERT_TRUE(client.ok());

  ScopedFault fault("tcp/accept", Status::IOError("injected"));
  const Result<UniqueFd> accepted = TcpAccept(listener.value().get());
  ASSERT_FALSE(accepted.ok());
  EXPECT_FALSE(accepted.status().IsUnavailable());  // a real failure, not EAGAIN
  EXPECT_EQ(fault.fire_count(), 1u);

  // The connection is still queued; the next accept succeeds.
  const Result<UniqueFd> retry = TcpAccept(listener.value().get());
  EXPECT_TRUE(retry.ok());
}

}  // namespace
}  // namespace periodica::util
