#include "periodica/util/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace periodica::util {
namespace {

TEST(ThreadPoolTest, ResolveThreadCountMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_TRUE(pool.WaitAll().ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitAllWithNothingSubmittedIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.WaitAll().ok());
}

TEST(ThreadPoolTest, WorksAtEveryWorkerCount) {
  for (std::size_t workers = 1; workers <= 4; ++workers) {
    ThreadPool pool(workers);
    std::vector<int> slots(64, 0);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      pool.Submit([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
    }
    ASSERT_TRUE(pool.WaitAll().ok()) << "workers = " << workers;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
    }
  }
}

TEST(ThreadPoolTest, ExceptionSurfacesAsInternalStatus) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  const Status status = pool.WaitAll();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, FirstErrorWinsAndOthersStillRun) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("first"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  const Status status = pool.WaitAll();
  EXPECT_TRUE(status.IsInternal());
  // A failed task never cancels the rest of the batch.
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, ReusableAfterWaitAndErrorIsCleared) {
  ThreadPool pool(3);
  pool.Submit([] { throw std::runtime_error("round one"); });
  EXPECT_FALSE(pool.WaitAll().ok());

  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  // The round-one error was consumed by the first WaitAll.
  EXPECT_TRUE(pool.WaitAll().ok());
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitAll: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<std::size_t> order;
  EXPECT_TRUE(ParallelFor(nullptr, 5, [&order](std::size_t i) {
                order.push_back(i);
              }).ok());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, PooledCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(128);
  EXPECT_TRUE(ParallelFor(&pool, hits.size(), [&hits](std::size_t i) {
                hits[i].fetch_add(1);
              }).ok());
  for (const std::atomic<int>& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  EXPECT_TRUE(ParallelFor(&pool, 0, [](std::size_t) { FAIL(); }).ok());
}

TEST(ParallelForTest, PropagatesTaskFailure) {
  ThreadPool pool(2);
  const Status status = ParallelFor(&pool, 8, [](std::size_t i) {
    if (i == 3) throw std::runtime_error("index three");
  });
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find("index three"), std::string::npos);
}

}  // namespace
}  // namespace periodica::util
