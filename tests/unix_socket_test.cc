// Regression tests for the framing and partial-I/O helpers in
// tools/unix_socket.h: short reads (bytes arriving one at a time), short
// writes (a full kernel buffer mid-message), and EINTR at every layer. The
// blocking (LineReader/SendLine) and non-blocking (LineBuffer/
// DrainReadable/SendSome) shapes share the framing core, so both are
// exercised against the same adversarial byte streams.

#include "../tools/unix_socket.h"

#include <csignal>
#include <fcntl.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace periodica::tools {
namespace {

struct Pair {
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void CloseB() {
    ::close(b);
    b = -1;
  }
  int a = -1;
  int b = -1;
};

TEST(LineBufferTest, OneByteAtATimeFramesIdentically) {
  const std::string wire = "first\nsecond line\n\nlast\n";
  LineBuffer buffer;
  std::vector<std::string> lines;
  for (char c : wire) {
    ASSERT_TRUE(buffer.Feed(&c, 1).ok());
    while (std::optional<std::string> line = buffer.NextLine()) {
      lines.push_back(*line);
    }
  }
  const std::vector<std::string> expected = {"first", "second line", "",
                                             "last"};
  EXPECT_EQ(lines, expected);
  EXPECT_FALSE(buffer.mid_line());
}

TEST(LineBufferTest, ManyLinesInOneFeed) {
  LineBuffer buffer;
  const std::string wire = "a\nb\nc\npartial";
  ASSERT_TRUE(buffer.Feed(wire.data(), wire.size()).ok());
  EXPECT_EQ(buffer.NextLine().value(), "a");
  EXPECT_EQ(buffer.NextLine().value(), "b");
  EXPECT_EQ(buffer.NextLine().value(), "c");
  EXPECT_FALSE(buffer.NextLine().has_value());
  EXPECT_TRUE(buffer.mid_line());
  ASSERT_TRUE(buffer.Feed("\n", 1).ok());
  EXPECT_EQ(buffer.NextLine().value(), "partial");
}

TEST(LineBufferTest, OversizedUnterminatedLineFailsEvenFedBytewise) {
  LineBuffer buffer(/*max_line=*/16);
  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = buffer.Feed("x", 1);
  }
  EXPECT_TRUE(status.IsIOError());
  // A complete line of the same total length is fine: the cap is on one
  // unterminated message, not the buffer.
  LineBuffer roomy(/*max_line=*/16);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(roomy.Feed("ab\n", 3).ok());
  }
}

TEST(SendSomeTest, ShortWritesResumeFromOffset) {
  Pair pair;
  // Shrink the send buffer so a large message cannot go out in one call.
  const int small = 4096;
  ASSERT_EQ(::setsockopt(pair.a, SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);
  int flags = ::fcntl(pair.a, F_GETFL, 0);
  ASSERT_EQ(::fcntl(pair.a, F_SETFL, flags | O_NONBLOCK), 0);

  const std::string message(1 << 20, 'z');
  std::size_t offset = 0;
  std::string received;
  // Alternate: push until the socket fills, then drain the other end —
  // SendSome must pick up exactly where it stopped.
  while (true) {
    const Result<bool> done = SendSome(pair.a, message, &offset);
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    if (done.value()) break;
    char chunk[8192];
    const ssize_t got = ::recv(pair.b, chunk, sizeof(chunk), 0);
    ASSERT_GT(got, 0);
    received.append(chunk, static_cast<std::size_t>(got));
  }
  char chunk[8192];
  ssize_t got;
  while ((got = ::recv(pair.b, chunk, sizeof(chunk), MSG_DONTWAIT)) > 0) {
    received.append(chunk, static_cast<std::size_t>(got));
  }
  EXPECT_EQ(received, message);
  EXPECT_EQ(offset, message.size());
}

TEST(DrainReadableTest, StopsAtWouldBlockAndReportsEof) {
  Pair pair;
  int flags = ::fcntl(pair.a, F_GETFL, 0);
  ASSERT_EQ(::fcntl(pair.a, F_SETFL, flags | O_NONBLOCK), 0);

  LineBuffer buffer;
  ASSERT_EQ(::send(pair.b, "ping\npo", 7, 0), 7);
  Result<bool> eof = DrainReadable(pair.a, &buffer);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value());  // would block, not EOF
  EXPECT_EQ(buffer.NextLine().value(), "ping");
  EXPECT_TRUE(buffer.mid_line());

  ASSERT_EQ(::send(pair.b, "ng\n", 3, 0), 3);
  pair.CloseB();
  eof = DrainReadable(pair.a, &buffer);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof.value());  // now a real EOF, after the tail was drained
  EXPECT_EQ(buffer.NextLine().value(), "pong");
  EXPECT_FALSE(buffer.mid_line());
}

TEST(LineReaderTest, CleanEofIsNotFoundMidLineIsIOError) {
  {
    Pair pair;
    ASSERT_EQ(::send(pair.b, "whole\n", 6, 0), 6);
    pair.CloseB();
    LineReader reader(pair.a);
    Result<std::string> line = reader.Next();
    ASSERT_TRUE(line.ok());
    EXPECT_EQ(line.value(), "whole");
    EXPECT_TRUE(reader.Next().status().IsNotFound());  // clean EOF
  }
  {
    Pair pair;
    ASSERT_EQ(::send(pair.b, "torn", 4, 0), 4);
    pair.CloseB();
    LineReader reader(pair.a);
    EXPECT_TRUE(reader.Next().status().IsIOError());  // died mid-line
  }
}

// --- EINTR ----------------------------------------------------------------

std::atomic<int> g_sigusr1_seen{0};
void CountSignal(int) { g_sigusr1_seen.fetch_add(1); }

/// Installs a no-SA_RESTART handler so recv/send actually return EINTR,
/// restoring the previous disposition on destruction.
class InterruptingSignal {
 public:
  InterruptingSignal() {
    struct sigaction action = {};
    action.sa_handler = CountSignal;
    action.sa_flags = 0;  // no SA_RESTART: syscalls fail with EINTR
    sigaction(SIGUSR1, &action, &previous_);
  }
  ~InterruptingSignal() { sigaction(SIGUSR1, &previous_, nullptr); }

 private:
  struct sigaction previous_ = {};
};

TEST(LineReaderTest, RetriesThroughEintr) {
  InterruptingSignal guard;
  Pair pair;

  std::atomic<bool> reading{false};
  std::string got;
  Status status = Status::OK();
  std::thread reader_thread([&] {
    LineReader reader(pair.a);
    reading.store(true);
    Result<std::string> line = reader.Next();  // blocks in recv
    if (line.ok()) {
      got = line.value();
    } else {
      status = line.status();
    }
  });
  while (!reading.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Interrupt the blocked recv a few times, then let data through.
  for (int i = 0; i < 3; ++i) {
    pthread_kill(reader_thread.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(::send(pair.b, "survived\n", 9, 0), 9);
  reader_thread.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got, "survived");
  EXPECT_GE(g_sigusr1_seen.load(), 1);
}

// (The EINTR-during-send counterpart is deliberately absent: on this test
// kernel, signaling a thread blocked in send(2) on a full AF_UNIX buffer
// misbehaves — verified with a standalone repro — so the write-side retry
// loops are exercised through short writes below instead.)
TEST(SendLineTest, ShortWritesDeliverTheWholeMessageInOrder) {
  Pair pair;
  const int small = 4096;
  ASSERT_EQ(::setsockopt(pair.a, SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);

  // A message much larger than the send buffer: SendLine must loop over
  // partial writes while the receiver drains, and every byte arrives in
  // order with the newline terminator.
  const std::string message(1 << 20, 'q');
  Status status = Status::OK();
  std::thread sender([&] { status = SendLine(pair.a, message); });
  std::string received;
  char chunk[8192];
  while (received.size() < message.size() + 1) {
    const ssize_t got = ::recv(pair.b, chunk, sizeof(chunk), 0);
    ASSERT_GT(got, 0);
    received.append(chunk, static_cast<std::size_t>(got));
  }
  sender.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(received, message + "\n");
}

}  // namespace
}  // namespace periodica::tools
