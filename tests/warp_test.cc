#include "periodica/baselines/warp.h"

#include <cstdint>
#include <limits>
#include <string_view>

#include <gtest/gtest.h>

#include "periodica/gen/synthetic.h"

namespace periodica {
namespace {

SymbolSeries Make(std::string_view text) {
  auto series = SymbolSeries::FromString(text);
  EXPECT_TRUE(series.ok()) << series.status();
  return std::move(series).ValueOrDie();
}

TEST(WarpTest, BandZeroEqualsRigidMismatchCount) {
  const SymbolSeries series = Make("abcabbabcb");
  WarpOptions rigid;
  rigid.band = 0;
  for (std::size_t p = 1; p < series.size(); ++p) {
    std::uint64_t mismatches = 0;
    for (std::size_t i = 0; i + p < series.size(); ++i) {
      if (series[i] != series[i + p]) ++mismatches;
    }
    auto distance = WarpedSelfDistance(series, p, rigid);
    ASSERT_TRUE(distance.ok());
    EXPECT_EQ(*distance, mismatches) << "p=" << p;
  }
}

TEST(WarpTest, PerfectPeriodScoresOne) {
  SyntheticSpec spec;
  spec.length = 500;
  spec.alphabet_size = 8;
  spec.period = 25;
  spec.seed = 3;
  auto series = GeneratePerfect(spec);
  ASSERT_TRUE(series.ok());
  for (const std::size_t p : {25u, 50u, 75u}) {
    auto score = WarpScore(*series, p);
    ASSERT_TRUE(score.ok());
    EXPECT_DOUBLE_EQ(*score, 1.0) << "p=" << p;
  }
  // Warping deliberately blurs period resolution: a shift of 26 against a
  // 25-periodic series re-synchronizes with one step of drift, so inside
  // the band it still scores ~1...
  auto near_multiple = WarpScore(*series, 26, WarpOptions{.band = 2});
  ASSERT_TRUE(near_multiple.ok());
  EXPECT_GT(*near_multiple, 0.95);
  // ...while a shift far from any multiple (37 = 25+12, drift 12 > band 2)
  // scores low.
  auto off = WarpScore(*series, 37, WarpOptions{.band = 2});
  ASSERT_TRUE(off.ok());
  EXPECT_LT(*off, 0.5);
}

TEST(WarpTest, WiderBandNeverIncreasesDistance) {
  SyntheticSpec spec;
  spec.length = 800;
  spec.alphabet_size = 6;
  spec.period = 17;
  spec.seed = 5;
  auto perfect = GeneratePerfect(spec);
  ASSERT_TRUE(perfect.ok());
  auto noisy = ApplyNoise(*perfect,
                          NoiseSpec::Combined(0.1, false, true, true, 7));
  ASSERT_TRUE(noisy.ok());
  std::uint64_t previous = std::numeric_limits<std::uint64_t>::max();
  for (const std::size_t band : {0u, 1u, 2u, 4u, 8u, 16u}) {
    auto distance =
        WarpedSelfDistance(*noisy, 17, WarpOptions{.band = band});
    ASSERT_TRUE(distance.ok());
    EXPECT_LE(*distance, previous) << "band=" << band;
    previous = *distance;
  }
}

TEST(WarpTest, DenseDeletionsCollapseRigidButNotWarped) {
  // In a self-comparison both copies carry the same edits, so a pair
  // (i, i+p) only mismatches when an edit falls strictly between its
  // endpoints — rigid confidence decays like (1-r)^p, the mechanism behind
  // Fig. 6's insertion/deletion collapse. Deleting every 20th symbol of a
  // period-25 series puts 1-2 edits inside *every* window: rigid collapses
  // to near-random while a small band recovers the alignment (the needed
  // drift is the per-window edit count, not cumulative).
  SyntheticSpec spec;
  spec.length = 2000;
  spec.alphabet_size = 8;
  spec.period = 25;
  spec.seed = 9;
  auto perfect = GeneratePerfect(spec);
  ASSERT_TRUE(perfect.ok());
  SymbolSeries deleted(perfect->alphabet());
  for (std::size_t i = 0; i < perfect->size(); ++i) {
    if (i % 20 != 19) deleted.Append((*perfect)[i]);
  }
  auto rigid = WarpScore(deleted, 25, WarpOptions{.band = 0});
  auto warped = WarpScore(deleted, 25, WarpOptions{.band = 8});
  ASSERT_TRUE(rigid.ok());
  ASSERT_TRUE(warped.ok());
  EXPECT_LT(*rigid, 0.4);
  EXPECT_GT(*warped, 0.8);
}

TEST(WarpTest, InsertionDeletionNoiseSurvivesWarping) {
  // The Fig. 6 failure case: I-D noise at ratio 0.1 collapses the rigid
  // confidence to ~0.05; the warped score at the true period stays high.
  SyntheticSpec spec;
  spec.length = 2000;
  spec.alphabet_size = 10;
  spec.period = 25;
  spec.seed = 11;
  auto perfect = GeneratePerfect(spec);
  ASSERT_TRUE(perfect.ok());
  auto noisy = ApplyNoise(*perfect,
                          NoiseSpec::Combined(0.1, false, true, true, 13));
  ASSERT_TRUE(noisy.ok());
  auto rigid = WarpScore(*noisy, 25, WarpOptions{.band = 0});
  auto warped = WarpScore(*noisy, 25, WarpOptions{.band = 12});
  ASSERT_TRUE(rigid.ok());
  ASSERT_TRUE(warped.ok());
  EXPECT_GT(*warped, *rigid + 0.2);
  EXPECT_GT(*warped, 0.7);
}

TEST(WarpTest, RankWarpedPeriodsSortsByScore) {
  SyntheticSpec spec;
  spec.length = 1000;
  spec.alphabet_size = 8;
  spec.period = 20;
  spec.seed = 15;
  auto perfect = GeneratePerfect(spec);
  ASSERT_TRUE(perfect.ok());
  auto noisy = ApplyNoise(*perfect,
                          NoiseSpec::Combined(0.05, true, true, true, 17));
  ASSERT_TRUE(noisy.ok());
  // Band 4 with every decoy at drift >= 7 from a multiple of 20, so the
  // warping blur cannot rescue them.
  auto ranked = RankWarpedPeriods(*noisy, {7, 13, 20, 40, 31},
                                  WarpOptions{.band = 4});
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 5u);
  // The true period (or its multiple) outranks the unrelated candidates.
  EXPECT_TRUE((*ranked)[0].period == 20 || (*ranked)[0].period == 40);
  for (std::size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].score, (*ranked)[i].score);
  }
}

TEST(WarpTest, ValidatesArguments) {
  const SymbolSeries series = Make("abab");
  EXPECT_TRUE(WarpedSelfDistance(series, 0).status().IsInvalidArgument());
  EXPECT_TRUE(WarpedSelfDistance(series, 4).status().IsInvalidArgument());
}

}  // namespace
}  // namespace periodica
