#!/usr/bin/env bash
# tools/check.sh — one entry point for every machine check in this repo.
#
# Runs, in order:
#   1. format   clang-format --dry-run over all first-party sources
#   2. lint     tools/lint_concurrency.py self-test + tree scan (raw sync
#               primitives, unguarded members, fault-site registry, atomic
#               ordering contracts, detached threads — docs/DEVELOPMENT.md)
#   3. tidy     clang-tidy (profile: .clang-tidy) over the compilation
#               database of the `release` preset
#   4. tests    configure + build + ctest for each preset: release,
#               asan-ubsan, tsan
#
# CI and humans share this script; the GitHub Actions workflow calls it with
# --tidy-only / --lint-only / --preset so each job maps to exactly one gate.
#
# Exit codes (documented contract — CI matches on these):
#   0  every requested gate passed; gates whose tool is not installed were
#      skipped with a notice (full run only — see code 6)
#   1  usage error
#   2  formatting violations (rerun with --fix to apply)
#   3  clang-tidy findings (rerun with --fix to apply fix-its)
#   4  configure or build failure
#   5  test failure
#   6  a gate was requested explicitly (--format-only / --tidy-only /
#      --lint-only) but its tool is not installed
#   7  concurrency-lint findings (or a dead lint rule in its self-test)
#
# Options:
#   --fix            apply clang-format/clang-tidy fixes instead of failing
#   --format-only    run only the format gate
#   --tidy-only      run only the clang-tidy gate
#   --lint-only      run only the concurrency lint
#   --no-sanitizers  test stage builds/runs only the `release` preset
#   --preset NAME    test stage builds/runs only preset NAME
#   -j N             parallelism (default: nproc)

set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
MODE=all
FIX=0
PRESETS=(release asan-ubsan tsan)

usage() { sed -n '2,43p' "$0"; }

while [ $# -gt 0 ]; do
  case "$1" in
    --fix) FIX=1 ;;
    --format-only) MODE=format ;;
    --tidy-only) MODE=tidy ;;
    --lint-only) MODE=lint ;;
    --no-sanitizers) PRESETS=(release) ;;
    --preset)
      shift
      [ $# -gt 0 ] || { echo "check.sh: --preset needs an argument" >&2; exit 1; }
      PRESETS=("$1")
      ;;
    -j)
      shift
      [ $# -gt 0 ] || { echo "check.sh: -j needs an argument" >&2; exit 1; }
      JOBS="$1"
      ;;
    -h|--help) usage; exit 0 ;;
    *) echo "check.sh: unknown option '$1'" >&2; usage >&2; exit 1 ;;
  esac
  shift
done

# Locate a tool, trying versioned names (clang-tidy-20 … clang-tidy-14).
find_tool() {
  local base="$1" v
  if command -v "$base" >/dev/null 2>&1; then echo "$base"; return 0; fi
  for v in 20 19 18 17 16 15 14; do
    if command -v "$base-$v" >/dev/null 2>&1; then echo "$base-$v"; return 0; fi
  done
  return 1
}

note()  { printf '\033[1;34m== %s\033[0m\n' "$*"; }
fail()  { printf '\033[1;31mFAIL: %s\033[0m\n' "$*"; }
skip()  { printf '\033[1;33mSKIP: %s\033[0m\n' "$*"; }

# First-party sources: everything tracked under src/ tools/ bench/ examples/
# tests/ with a C++ extension.
sources() {
  git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'tools/*.cc' \
               'bench/*.cc' 'bench/*.h' 'examples/*.cpp'
}

# ---------------------------------------------------------------- format ----
run_format() {
  local cf
  if ! cf=$(find_tool clang-format); then
    if [ "$MODE" = format ]; then
      fail "clang-format requested (--format-only) but not installed"
      return 6
    fi
    skip "clang-format not installed; formatting gate not run"
    return 0
  fi
  if [ "$FIX" = 1 ]; then
    note "clang-format: applying fixes ($cf)"
    sources | xargs -P "$JOBS" -n 16 "$cf" -i --style=file
    return 0
  fi
  note "clang-format: dry run ($cf)"
  if sources | xargs -P "$JOBS" -n 16 "$cf" --dry-run -Werror --style=file; then
    return 0
  fi
  fail "formatting violations — rerun with --fix"
  return 2
}

# ------------------------------------------------------------------ lint ----
run_lint() {
  if ! command -v python3 >/dev/null 2>&1; then
    if [ "$MODE" = lint ]; then
      fail "concurrency lint requested (--lint-only) but python3 not installed"
      return 6
    fi
    skip "python3 not installed; concurrency lint not run"
    return 0
  fi
  # Self-test first: a lint whose rules silently died would pass everything.
  note "concurrency lint: self-test (every rule must fire on a seeded violation)"
  python3 tools/lint_concurrency.py --self-test \
    || { fail "lint_concurrency self-test found a dead rule"; return 7; }
  note "concurrency lint: scanning src/ tools/ tests/ bench/ examples/"
  if python3 tools/lint_concurrency.py; then
    return 0
  fi
  fail "concurrency-lint findings — see output above (docs/DEVELOPMENT.md)"
  return 7
}

# ------------------------------------------------------------------ tidy ----
run_tidy() {
  local ct
  if ! ct=$(find_tool clang-tidy); then
    if [ "$MODE" = tidy ]; then
      fail "clang-tidy requested (--tidy-only) but not installed"
      return 6
    fi
    skip "clang-tidy not installed; static-analysis gate not run"
    return 0
  fi
  note "configuring release preset for the compilation database"
  cmake --preset release >/dev/null || { fail "configure failed"; return 4; }
  local db=build-release
  note "clang-tidy over $db/compile_commands.json ($ct)"
  # Headers are covered via HeaderFilterRegex when their including .cc runs.
  local tidy_sources
  tidy_sources=$(git ls-files 'src/**/*.cc' 'tests/*.cc' 'tools/*.cc' \
                              'bench/*.cc' 'examples/*.cpp')
  if [ "$FIX" = 1 ]; then
    # Serial when fixing: parallel fix-its race on shared headers.
    echo "$tidy_sources" | xargs -n 1 "$ct" -p "$db" --quiet -fix
    return 0
  fi
  if echo "$tidy_sources" | xargs -P "$JOBS" -n 1 "$ct" -p "$db" --quiet; then
    return 0
  fi
  fail "clang-tidy findings — see output above (rerun with --fix for fix-its)"
  return 3
}

# ----------------------------------------------------------------- tests ----
run_tests() {
  local preset
  for preset in "${PRESETS[@]}"; do
    note "preset $preset: configure"
    cmake --preset "$preset" >/dev/null \
      || { fail "configure failed for preset $preset"; return 4; }
    note "preset $preset: build"
    cmake --build --preset "$preset" --parallel "$JOBS" \
      || { fail "build failed for preset $preset"; return 4; }
    note "preset $preset: ctest"
    ctest --preset "$preset" -j "$JOBS" \
      || { fail "tests failed under preset $preset"; return 5; }
  done
  return 0
}

rc=0
case "$MODE" in
  format) run_format; rc=$? ;;
  tidy)   run_tidy; rc=$? ;;
  lint)   run_lint; rc=$? ;;
  all)
    run_format; rc=$?
    if [ "$rc" = 0 ]; then run_lint; rc=$?; fi
    if [ "$rc" = 0 ]; then run_tidy; rc=$?; fi
    if [ "$rc" = 0 ]; then run_tests; rc=$?; fi
    ;;
esac

if [ "$rc" = 0 ]; then
  note "all requested checks passed"
else
  fail "check.sh exiting with code $rc"
fi
exit "$rc"
