#!/usr/bin/env python3
"""Concurrency lint: keeps the compile-time thread-safety layer honest.

Clang's -Wthread-safety analysis (see src/periodica/util/sync.h and
docs/DEVELOPMENT.md) only checks code that goes through the annotated
wrappers and only fires on members that carry PERIODICA_GUARDED_BY. This
lint closes the gaps the analyzer cannot see:

  raw-sync          Raw std::mutex / std::lock_guard / std::condition_variable
                    (and friends) anywhere outside util/sync.h. Raw primitives
                    are invisible to the analysis, so one stray std::mutex
                    silently exempts its critical sections from checking.
  unguarded-member  A mutable data member of an annotated class (one that
                    declares a util::Mutex/util::SharedMutex or uses
                    PERIODICA_GUARDED_BY) that itself has no
                    PERIODICA_GUARDED_BY, is not const/atomic, and carries no
                    waiver. Waive with a comment on the declaration line or
                    the line above:  // lint: unguarded(member_name): reason
  fault-site        A FaultInjector::Check("site") string in src/ or tools/
                    that is missing from the registered-sites table in
                    docs/ROBUSTNESS.md (the operator-facing registry).
  atomic-ordering   A std::atomic declaration in src/ or tools/ whose
                    preceding comment block does not state its memory-ordering
                    contract with an "Ordering:" line.
  detached-thread   Any .detach() on a thread: detached threads outlive every
                    join point, so neither the analyzer, TSan, nor graceful
                    drain can reason about them.
  loop-confined-waiver
                    A "lint: unguarded(x): loop-confined" waiver in a file
                    that never references EventLoop. Loop confinement is a
                    real discipline only where a util::EventLoop serializes
                    access on its one thread (see util/event_loop.h); in any
                    other file the waiver is a lie and must state a
                    different reason (or the member must be guarded).
  blocking-socket   A raw blocking socket syscall (::connect / ::accept /
                    ::recv / ::send) in shipped code whose file never touches
                    util::EventLoop. Blocking I/O stalls whatever thread runs
                    it; it is legitimate only on an event loop's non-blocking
                    fds (such files reference EventLoop and are exempt) or in
                    deliberately blocking helpers, which must say so:
                    // lint: blocking(call): reason  on the call line or the
                    line above.

Usage:
  tools/lint_concurrency.py [--root DIR]    lint the tree (exit 1 on findings)
  tools/lint_concurrency.py --self-test     verify every rule fires on a
                                            seeded violation (exit 1 if a rule
                                            is dead)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

SCAN_DIRS = ("src", "tools", "tests", "bench", "examples")
# Registry-backed rules (fault-site, atomic-ordering) only police shipped
# code: tests and benches may arm throwaway sites and use scratch atomics.
SHIPPED_DIRS = ("src", "tools")
SYNC_HEADER = pathlib.Path("src/periodica/util/sync.h")

RAW_SYNC_TOKENS = (
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
    "std::condition_variable_any",
)

MUTEX_MEMBER_RE = re.compile(
    r"\b(?:util::)?(?:Mutex|SharedMutex)\s+\w+\s*;")
WAIVER_RE = re.compile(r"lint:\s*unguarded\((\w+)\)\s*:\s*(\S[^\n]*)")
# The one waiver reason with teeth: "loop-confined" asserts the member is
# only touched on an EventLoop's loop thread, which is checkable — the file
# must actually use EventLoop for the claim to mean anything.
LOOP_CONFINED_REASON = "loop-confined"
EVENT_LOOP_USE_RE = re.compile(r"\bEventLoop\b")
CHECK_SITE_RE = re.compile(r'FaultInjector::Check\(\s*"([^"]+)"')
BLOCKING_CALL_RE = re.compile(r"::\s*(connect|accept|recv|send)\s*\(")
BLOCKING_WAIVER_RE = re.compile(r"lint:\s*blocking\((\w+)\)\s*:\s*(\S[^\n]*)")
DOC_SITE_RE = re.compile(r"\|\s*`([a-z0-9_]+/[a-z0-9_]+)`\s*\|")
ATOMIC_DECL_RE = re.compile(r"^\s*(?:mutable\s+)?std::atomic<")


class Finding:
    def __init__(self, rule: str, path: pathlib.Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines and
    column positions so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(root: pathlib.Path, dirs=SCAN_DIRS):
    for directory in dirs:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".h", ".cc") and path.is_file():
                yield path


def is_comment_line(line: str) -> bool:
    stripped = line.strip()
    return (stripped.startswith("//") or stripped.startswith("*")
            or stripped.startswith("/*") or stripped.endswith("*/")
            or stripped == "")


# --- rule: raw-sync ---------------------------------------------------------


def check_raw_sync(path: pathlib.Path, rel: pathlib.Path,
                   stripped: str) -> list[Finding]:
    if rel == SYNC_HEADER:
        return []
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for token in RAW_SYNC_TOKENS:
            if re.search(re.escape(token) + r"\b", line):
                findings.append(
                    Finding(
                        "raw-sync", rel, lineno,
                        f"raw {token} outside util/sync.h; use the "
                        "capability-annotated util:: wrappers"))
                break
    return findings


# --- rule: unguarded-member -------------------------------------------------


def find_class_bodies(stripped: str):
    """Yields (class_name, header_line, body_text, body_start_line) for every
    top-level and nested class/struct with a braced body."""
    for match in re.finditer(
            r"\b(class|struct)\s+(?:PERIODICA_\w+(?:\([^)]*\))?\s+)?(\w+)"
            r"[^;{(]*\{", stripped):
        name = match.group(2)
        open_brace = match.end() - 1
        depth = 0
        for i in range(open_brace, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    body = stripped[open_brace + 1:i]
                    start_line = stripped.count("\n", 0, open_brace) + 1
                    yield name, body, start_line
                    break


def class_member_statements(body: str):
    """Yields (statement_text, line_offset) for class-depth statements,
    skipping nested braced regions (method bodies, nested types, brace
    initializers reduced to their head)."""
    statement = []
    line = 0
    depth = 0
    start_line = 0
    for c in body:
        if c == "\n":
            line += 1
        if depth == 0 and not statement and c not in " \n\t":
            start_line = line
        if c == "{":
            depth += 1
            continue
        if c == "}":
            depth -= 1
            # A closed braced region ends any pending statement (function
            # definition / nested type); drop it.
            if depth == 0:
                statement = []
            continue
        if depth > 0:
            continue
        if c == ";":
            text = "".join(statement).strip()
            if text:
                yield text, start_line
            statement = []
        else:
            statement.append(c)


MEMBER_SKIP_PREFIXES = (
    "public", "private", "protected", "using", "typedef", "friend",
    "static", "enum", "template", "explicit", "virtual", "return",
    "class", "struct",  # forward declarations of nested types
    "PERIODICA_", "#",
)

UNGUARDED_OK_TYPES = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\b|constexpr\b|static\b"
    r"|(?:util::)?(?:Mutex|SharedMutex|CondVar)\b"
    r"|std::atomic\b|std::atomic<)")


def check_unguarded_members(rel: pathlib.Path, raw: str,
                            stripped: str) -> list[Finding]:
    waivers = {member for member, _reason in WAIVER_RE.findall(raw)}
    findings = []
    for name, body, start_line in find_class_bodies(stripped):
        annotated = ("PERIODICA_GUARDED_BY" in body
                     or MUTEX_MEMBER_RE.search(body) is not None)
        if not annotated:
            continue
        for statement, offset in class_member_statements(body):
            flat = " ".join(statement.split())
            if "PERIODICA_GUARDED_BY" in flat:
                continue
            if any(flat.startswith(p) for p in MEMBER_SKIP_PREFIXES):
                continue
            if UNGUARDED_OK_TYPES.match(flat):
                continue
            # Function declarations and constructor-style initializers have
            # parentheses; member variables in this codebase use brace or =
            # initializers (the brace part was consumed by the splitter).
            if "(" in flat or ")" in flat:
                continue
            decl = flat.split("=")[0].strip()
            words = re.findall(r"\w+", decl)
            if len(words) < 2:
                continue  # not a "type name" shaped declaration
            member = words[-1]
            if re.match(r"^\d", member):
                member = words[-2] if len(words) >= 2 else member
            if member in waivers:
                continue
            findings.append(
                Finding(
                    "unguarded-member", rel, start_line + offset + 1,
                    f"member '{member}' of annotated class '{name}' has no "
                    "PERIODICA_GUARDED_BY; annotate it, make it "
                    "const/atomic, or waive with "
                    f"'// lint: unguarded({member}): reason'"))
    return findings


# --- rule: loop-confined-waiver ---------------------------------------------


def check_loop_confined_waivers(rel: pathlib.Path, raw: str,
                                stripped: str) -> list[Finding]:
    """A 'loop-confined' waiver is only honest in a file that actually runs
    code on a util::EventLoop. The EventLoop reference is checked in the
    comment-stripped text so a mention inside a comment cannot satisfy it."""
    if EVENT_LOOP_USE_RE.search(stripped):
        return []
    findings = []
    for lineno, line in enumerate(raw.splitlines(), start=1):
        for member, reason in WAIVER_RE.findall(line):
            if reason.split()[0].rstrip(".,;") == LOOP_CONFINED_REASON:
                findings.append(
                    Finding(
                        "loop-confined-waiver", rel, lineno,
                        f"waiver 'unguarded({member}): loop-confined' in a "
                        "file that never uses EventLoop; confinement to a "
                        "loop thread requires one (see util/event_loop.h) — "
                        "guard the member or state the real reason"))
    return findings


# --- rule: blocking-socket --------------------------------------------------


def check_blocking_sockets(rel: pathlib.Path, raw: str,
                           stripped: str) -> list[Finding]:
    """A blocking connect/accept/recv/send stalls its whole thread — fatal on
    the event loop (one stuck callback freezes every connection), and a
    latent hang anywhere else. Files that compose with util::EventLoop are
    exempt: their sockets are non-blocking by construction (the loop requires
    it), so the syscalls stop at EAGAIN. Everything else must either not do
    raw socket I/O or own up with a waiver naming the call."""
    if EVENT_LOOP_USE_RE.search(stripped):
        return []
    waivers: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw.splitlines(), start=1):
        for name, _reason in BLOCKING_WAIVER_RE.findall(line):
            waivers.setdefault(lineno, set()).add(name)
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for name in BLOCKING_CALL_RE.findall(line):
            if name in (waivers.get(lineno, set())
                        | waivers.get(lineno - 1, set())):
                continue
            findings.append(
                Finding(
                    "blocking-socket", rel, lineno,
                    f"raw ::{name}() in a file that never uses EventLoop: "
                    "blocking socket I/O stalls its thread; route it through "
                    "the event loop's non-blocking plumbing or waive with "
                    f"'// lint: blocking({name}): reason'"))
    return findings


# --- rule: fault-site -------------------------------------------------------


def registered_fault_sites(root: pathlib.Path) -> set[str]:
    doc = root / "docs" / "ROBUSTNESS.md"
    if not doc.is_file():
        return set()
    return set(DOC_SITE_RE.findall(doc.read_text(encoding="utf-8")))


def check_fault_sites(rel: pathlib.Path, raw: str,
                      registered: set[str]) -> list[Finding]:
    findings = []
    for lineno, line in enumerate(raw.splitlines(), start=1):
        for site in CHECK_SITE_RE.findall(line):
            if site not in registered:
                findings.append(
                    Finding(
                        "fault-site", rel, lineno,
                        f"fault-injection site '{site}' is not in the "
                        "registered-sites table in docs/ROBUSTNESS.md"))
    return findings


# --- rule: atomic-ordering --------------------------------------------------


def check_atomic_ordering(rel: pathlib.Path, raw: str,
                          stripped: str) -> list[Finding]:
    raw_lines = raw.splitlines()
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if not ATOMIC_DECL_RE.match(line):
            continue
        # Walk upward through the contiguous block of comments, blank lines
        # and sibling atomic declarations looking for the contract. One
        # "Ordering:" block may cover a group of adjacent counters.
        has_contract = False
        i = lineno - 2  # 0-based index of the line above the declaration
        while i >= 0:
            above = raw_lines[i]
            if "Ordering:" in above:
                has_contract = True
                break
            if (is_comment_line(above)
                    or ATOMIC_DECL_RE.match(strip_comments_and_strings(above))
                    # A class/struct header or access specifier: the contract
                    # may be the type's doc comment covering all members.
                    or re.match(r"\s*(?:class|struct)\b.*\{\s*$", above)
                    or re.match(r"\s*(?:public|private|protected)\s*:", above)):
                i -= 1
                continue
            break
        if not has_contract:
            findings.append(
                Finding(
                    "atomic-ordering", rel, lineno,
                    "std::atomic declaration without an 'Ordering:' comment "
                    "stating its memory-ordering contract (see "
                    "docs/DEVELOPMENT.md)"))
    return findings


# --- rule: detached-thread --------------------------------------------------


def check_detached_threads(rel: pathlib.Path,
                           stripped: str) -> list[Finding]:
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if re.search(r"\.\s*detach\s*\(\s*\)", line):
            findings.append(
                Finding(
                    "detached-thread", rel, lineno,
                    ".detach()ed threads escape every join point; keep the "
                    "handle and join (see the drain path in periodicad)"))
    return findings


# --- driver -----------------------------------------------------------------


def lint_tree(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    registered = registered_fault_sites(root)
    shipped = {p for p in iter_source_files(root, SHIPPED_DIRS)}
    for path in iter_source_files(root):
        rel = path.relative_to(root)
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(raw)
        findings += check_raw_sync(path, rel, stripped)
        findings += check_unguarded_members(rel, raw, stripped)
        findings += check_loop_confined_waivers(rel, raw, stripped)
        findings += check_detached_threads(rel, stripped)
        if path in shipped:
            findings += check_fault_sites(rel, raw, registered)
            findings += check_atomic_ordering(rel, raw, stripped)
            findings += check_blocking_sockets(rel, raw, stripped)
    return findings


# --- self-test --------------------------------------------------------------

SELF_TEST_CASES = {
    # case name -> (file path, file contents, rule, expectation)
    # rule + should_fire=True:  that rule must fire on the seeded violation.
    # rule + should_fire=False: that rule must stay silent on the file.
    # rule=None (should_fire=False): NO rule may fire — a clean canary.
    "raw-sync": (
        "src/bad_raw.cc",
        "#include <mutex>\nstd::mutex m;\n",
        "raw-sync",
        True,
    ),
    "unguarded-member": (
        "src/bad_member.h",
        "#include \"periodica/util/sync.h\"\n"
        "class Counter {\n"
        " private:\n"
        "  util::Mutex mutex_;\n"
        "  int guarded_ PERIODICA_GUARDED_BY(mutex_) = 0;\n"
        "  int naked_ = 0;\n"
        "};\n",
        "unguarded-member",
        True,
    ),
    "fault-site": (
        "src/bad_site.cc",
        "Status S() { return FaultInjector::Check(\"no_such/site\"); }\n",
        "fault-site",
        True,
    ),
    "atomic-ordering": (
        "src/bad_atomic.h",
        "#include <atomic>\n"
        "class C {\n"
        "  std::atomic<int> undocumented_{0};\n"
        "};\n",
        "atomic-ordering",
        True,
    ),
    "detached-thread": (
        "src/bad_detach.cc",
        "void F() { std::thread([] {}).detach(); }\n",
        "detached-thread",
        True,
    ),
    # A loop-confined waiver in a file with no EventLoop in sight: the claim
    # is uncheckable, so the rule must fire. The comment-only mention of
    # EventLoop must NOT count as usage.
    "loop-confined-waiver": (
        "src/bad_loop_waiver.h",
        "#include \"periodica/util/sync.h\"\n"
        "// This class has nothing to do with the EventLoop.\n"
        "class Worker {\n"
        " private:\n"
        "  util::Mutex mutex_;\n"
        "  int jobs_ PERIODICA_GUARDED_BY(mutex_) = 0;\n"
        "  int state_ = 0;  // lint: unguarded(state_): loop-confined\n"
        "};\n",
        "loop-confined-waiver",
        True,
    ),
    # The same waiver next to real EventLoop usage is legitimate: the rule
    # must stay silent (and no other rule may complain about the member).
    "loop-confined-near-event-loop": (
        "src/good_loop_waiver.h",
        "#include \"periodica/util/event_loop.h\"\n"
        "#include \"periodica/util/sync.h\"\n"
        "class Hub {\n"
        " private:\n"
        "  util::Mutex mutex_;\n"
        "  int jobs_ PERIODICA_GUARDED_BY(mutex_) = 0;\n"
        "  util::EventLoop* loop_ = nullptr;"
        "  // lint: unguarded(loop_): set before Run\n"
        "  int state_ = 0;  // lint: unguarded(state_): loop-confined\n"
        "};\n",
        None,
        False,
    ),
    # A raw blocking connect in a file with no EventLoop and no waiver: the
    # rule must fire.
    "blocking-socket": (
        "src/bad_blocking.cc",
        "int Dial(int fd) { return ::connect(fd, nullptr, 0); }\n",
        "blocking-socket",
        True,
    ),
    # The same syscall in a file that composes with the event loop is on
    # non-blocking fds by construction: the rule must stay silent.
    "blocking-socket-event-loop": (
        "src/good_loop_io.cc",
        "#include \"periodica/util/event_loop.h\"\n"
        "void Pump(util::EventLoop* loop, int fd) {\n"
        "  (void)loop;\n"
        "  (void)::send(fd, nullptr, 0, 0);\n"
        "}\n",
        "blocking-socket",
        False,
    ),
    # An explicitly waived blocking helper: the rule must stay silent.
    "blocking-socket-waived": (
        "src/good_waived_io.cc",
        "// lint: blocking(connect): one-shot client dial - no loop here\n"
        "int Dial(int fd) { return ::connect(fd, nullptr, 0); }\n",
        "blocking-socket",
        False,
    ),
    # A clean annotated class: no rule may fire (false-positive canary).
    "clean": (
        "src/clean.h",
        "#include \"periodica/util/sync.h\"\n"
        "#include <atomic>\n"
        "class Clean {\n"
        " public:\n"
        "  void Add(int d) PERIODICA_EXCLUDES(mutex_) {\n"
        "    util::MutexLock lock(&mutex_);\n"
        "    total_ += d;\n"
        "  }\n"
        " private:\n"
        "  util::Mutex mutex_;\n"
        "  int total_ PERIODICA_GUARDED_BY(mutex_) = 0;\n"
        "  const int limit_ = 10;\n"
        "  // Ordering: relaxed - advisory statistic.\n"
        "  std::atomic<int> peeks_{0};\n"
        "  int cache_ = 0;  // lint: unguarded(cache_): thread-local scratch\n"
        "};\n",
        None,
        False,
    ),
}


def self_test() -> int:
    failures = 0
    for case, (rel_name, contents, rule, should_fire) \
            in SELF_TEST_CASES.items():
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            target = root / rel_name
            target.parent.mkdir(parents=True)
            target.write_text(contents, encoding="utf-8")
            (root / "docs").mkdir()
            (root / "docs" / "ROBUSTNESS.md").write_text(
                "| `real/site` | somewhere | a registered site |\n",
                encoding="utf-8")
            findings = lint_tree(root)
            if rule is None:
                ok = not findings
                detail = "; ".join(str(f) for f in findings)
            elif should_fire:
                ok = any(f.rule == rule for f in findings)
                detail = f"rule '{rule}' did not fire on a seeded violation"
            else:
                hits = [f for f in findings if f.rule == rule]
                ok = not hits
                detail = "; ".join(str(f) for f in hits)
            status = "ok" if ok else "FAIL"
            print(f"self-test [{case}]: {status}"
                  + ("" if ok else f" ({detail})"))
            if not ok:
                failures += 1
    if failures:
        print(f"self-test: {failures} dead or over-eager rule(s)",
              file=sys.stderr)
        return 1
    print("self-test: all rules verified live")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Concurrency lint for the periodica tree.")
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent's "
                        "parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"lint_concurrency: no such root: {root}", file=sys.stderr)
        return 2

    findings = lint_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_concurrency: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("lint_concurrency: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
