#!/usr/bin/env python3
"""Performance gate for the committed BENCH_*.json baselines.

Two subcommands:

  perf_gate.py lint FILE...
      Validate benchmark JSON files against the documented schemas
      (bench/README.md). Exit 3 on any schema violation.

  perf_gate.py check --baseline FILE --current FILE [options]
      Compare a fresh benchmark run against a committed baseline. The
      "bench" field selects the comparison (stagebench or micro_parallel).
      Comparisons that would be meaningless are *skipped loudly* rather
      than failed, so the gate can run unconditionally in CI:

      * micro_parallel: skipped when either side was recorded with
        hardware_threads == 1 (thread-scaling of a single-core host says
        nothing; see docs/PERFORMANCE.md "Baseline debt").
      * any bench: refused when the current host has MORE hardware
        threads than the baseline host, or when arch / SIMD / workload
        parameters differ — a baseline from a weaker or different host
        must not gate a stronger one. Re-record the baseline instead.

      Skips and refusals exit 0 (4 with --strict). Regressions exit 2.

Exit codes: 0 pass or skip, 1 usage/IO error, 2 regression,
3 schema violation, 4 refused comparison under --strict.
"""

import argparse
import json
import sys

DEFAULT_MAX_REGRESS = 0.25  # fraction: fail when current > baseline * 1.25
DEFAULT_MIN_SIMD_SPEEDUP = 1.0


class SchemaError(Exception):
    pass


def _require(obj, key, types, where):
    if key not in obj:
        raise SchemaError(f"{where}: missing key '{key}'")
    if not isinstance(obj[key], types):
        names = (
            types.__name__
            if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        raise SchemaError(
            f"{where}: key '{key}' should be {names}, "
            f"got {type(obj[key]).__name__}"
        )
    return obj[key]


NUMBER = (int, float)


def lint_stagebench(doc, where):
    """BENCH_stages.json schema; documented in bench/README.md."""
    if _require(doc, "schema_version", int, where) != 1:
        raise SchemaError(f"{where}: unknown schema_version")
    _require(doc, "quick", bool, where)
    for key in ("n", "sigma", "period", "max_period", "repeats",
                "hardware_threads"):
        _require(doc, key, int, where)
    _require(doc, "threshold", NUMBER, where)
    for key in ("arch", "simd_detected", "cycle_counter"):
        _require(doc, key, str, where)
    _require(doc, "stage2_simd_speedup", NUMBER, where)
    stages = _require(doc, "stages", list, where)
    if not stages:
        raise SchemaError(f"{where}: 'stages' is empty")
    for i, stage in enumerate(stages):
        swhere = f"{where}: stages[{i}]"
        if not isinstance(stage, dict):
            raise SchemaError(f"{swhere}: not an object")
        _require(stage, "stage", str, swhere)
        _require(stage, "kernel", str, swhere)
        _require(stage, "cycles_min", int, swhere)
        wall = _require(stage, "wall_ms", dict, swhere)
        for key in ("min", "mean", "max"):
            _require(wall, key, NUMBER, f"{swhere}: wall_ms")
        samples = _require(stage, "samples_ms", list, swhere)
        if len(samples) != doc["repeats"]:
            raise SchemaError(
                f"{swhere}: {len(samples)} samples_ms but repeats = "
                f"{doc['repeats']}"
            )
        for sample in samples:
            if not isinstance(sample, NUMBER):
                raise SchemaError(f"{swhere}: non-numeric sample")


def lint_micro_parallel(doc, where):
    """BENCH_parallel.json schema; documented in bench/README.md."""
    for key in ("n", "sigma", "period", "max_period", "repeats",
                "hardware_threads"):
        _require(doc, key, int, where)
    results = _require(doc, "results", list, where)
    if not results:
        raise SchemaError(f"{where}: 'results' is empty")
    for i, row in enumerate(results):
        rwhere = f"{where}: results[{i}]"
        if not isinstance(row, dict):
            raise SchemaError(f"{rwhere}: not an object")
        _require(row, "threads", int, rwhere)
        _require(row, "wall_ms", NUMBER, rwhere)
        _require(row, "speedup", NUMBER, rwhere)


LINTERS = {
    "stagebench": lint_stagebench,
    "micro_parallel": lint_micro_parallel,
}


def load_and_lint(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(1)
    except json.JSONDecodeError as err:
        raise SchemaError(f"{path}: not valid JSON: {err}") from err
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not an object")
    bench = _require(doc, "bench", str, path)
    linter = LINTERS.get(bench)
    if linter is None:
        raise SchemaError(
            f"{path}: unknown bench '{bench}' "
            f"(known: {', '.join(sorted(LINTERS))})"
        )
    linter(doc, path)
    return doc


class Refused(Exception):
    """Comparison would be meaningless; skip (exit 0) or fail (--strict)."""


def check_host_compatible(baseline, current, params):
    """Common refusal rules for both benches."""
    for key in params:
        if baseline.get(key) != current.get(key):
            raise Refused(
                f"workload parameter '{key}' differs "
                f"(baseline {baseline.get(key)!r}, current "
                f"{current.get(key)!r}); re-record the baseline"
            )
    base_threads = baseline["hardware_threads"]
    cur_threads = current["hardware_threads"]
    if cur_threads > base_threads:
        raise Refused(
            f"baseline was recorded on a weaker host "
            f"({base_threads} hardware threads vs {cur_threads} now); "
            f"numbers are not comparable — re-record the baseline on "
            f"this class of host"
        )


def check_stagebench_within_run(current, args):
    """Baseline-free check: on any host with a vector kernel, stage-2 SIMD
    must not lose to scalar. Runs even when the cross-host comparison is
    refused, so CI keeps this gate on runners the baseline does not match.
    Skipped on scalar-only hosts, where the reported speedup is trivially
    1.0 against itself."""
    failures = []
    stage2_kernels = {
        s["kernel"] for s in current["stages"]
        if s["stage"] == "stage2_phase_refine"
    }
    if len(stage2_kernels) > 1:
        speedup = current["stage2_simd_speedup"]
        verdict = "ok" if speedup >= args.min_simd_speedup else "REGRESSED"
        print(
            f"  stage2_simd_speedup {speedup:.3f} "
            f"(minimum {args.min_simd_speedup:.3f}): {verdict}"
        )
        if speedup < args.min_simd_speedup:
            failures.append(
                f"stage2_simd_speedup {speedup:.3f} below required "
                f"{args.min_simd_speedup:.3f}"
            )
    else:
        print("  note: single stage-2 kernel on this host; "
              "SIMD speedup check skipped")
    return failures


def check_stagebench(baseline, current, args):
    failures = check_stagebench_within_run(current, args)
    try:
        check_host_compatible(
            baseline, current,
            params=("quick", "n", "sigma", "period", "max_period",
                    "threshold", "arch", "simd_detected"),
        )
    except Refused:
        # The within-run verdict stands on its own; surface it instead of
        # the skip when it failed.
        if failures:
            return failures
        raise

    base_stages = {
        (s["stage"], s["kernel"]): s["wall_ms"]["min"]
        for s in baseline["stages"]
    }
    cur_stages = {
        (s["stage"], s["kernel"]): s["wall_ms"]["min"]
        for s in current["stages"]
    }
    for key, base_min in sorted(base_stages.items()):
        stage, kernel = key
        if key not in cur_stages:
            failures.append(
                f"stage {stage} [{kernel}]: present in baseline but "
                f"missing from the current run"
            )
            continue
        cur_min = cur_stages[key]
        limit = base_min * (1.0 + args.max_regress)
        verdict = "ok" if cur_min <= limit else "REGRESSED"
        print(
            f"  {stage:<22} [{kernel:<7}] baseline {base_min:9.3f} ms, "
            f"current {cur_min:9.3f} ms (limit {limit:9.3f}): {verdict}"
        )
        if cur_min > limit:
            failures.append(
                f"stage {stage} [{kernel}]: {cur_min:.3f} ms vs baseline "
                f"{base_min:.3f} ms exceeds +{args.max_regress:.0%}"
            )
    for key in sorted(set(cur_stages) - set(base_stages)):
        print(f"  note: stage {key[0]} [{key[1]}] is new (no baseline)")
    return failures


def check_micro_parallel(baseline, current, args):
    # A 1-thread host cannot produce a meaningful thread-scaling curve:
    # skip the comparison entirely, not just the JSON emission
    # (micro_parallel itself exits 3 without writing JSON in that case,
    # but committed baselines may predate that behavior).
    for name, doc in (("baseline", baseline), ("current", current)):
        if doc["hardware_threads"] == 1:
            raise Refused(
                f"{name} was recorded with hardware_threads == 1; "
                f"thread-scaling comparison is meaningless — re-record "
                f"BENCH_parallel.json on a multi-core host"
            )
    check_host_compatible(
        baseline, current, params=("n", "sigma", "period", "max_period")
    )

    failures = []
    base_rows = {r["threads"]: r["wall_ms"] for r in baseline["results"]}
    cur_rows = {r["threads"]: r["wall_ms"] for r in current["results"]}
    for threads, base_ms in sorted(base_rows.items()):
        if threads not in cur_rows:
            failures.append(f"threads={threads}: missing from current run")
            continue
        cur_ms = cur_rows[threads]
        limit = base_ms * (1.0 + args.max_regress)
        verdict = "ok" if cur_ms <= limit else "REGRESSED"
        print(
            f"  threads {threads:>2}: baseline {base_ms:9.3f} ms, "
            f"current {cur_ms:9.3f} ms (limit {limit:9.3f}): {verdict}"
        )
        if cur_ms > limit:
            failures.append(
                f"threads={threads}: {cur_ms:.3f} ms vs baseline "
                f"{base_ms:.3f} ms exceeds +{args.max_regress:.0%}"
            )
    return failures


def cmd_lint(args):
    status = 0
    for path in args.files:
        try:
            doc = load_and_lint(path)
        except SchemaError as err:
            print(f"perf_gate lint: {err}", file=sys.stderr)
            status = 3
            continue
        print(f"perf_gate lint: {path}: ok ({doc['bench']})")
    return status


def cmd_check(args):
    try:
        baseline = load_and_lint(args.baseline)
        current = load_and_lint(args.current)
    except SchemaError as err:
        print(f"perf_gate: {err}", file=sys.stderr)
        return 3
    if baseline["bench"] != current["bench"]:
        print(
            f"perf_gate: baseline is {baseline['bench']} but current is "
            f"{current['bench']}",
            file=sys.stderr,
        )
        return 1

    checker = {
        "stagebench": check_stagebench,
        "micro_parallel": check_micro_parallel,
    }[baseline["bench"]]
    print(f"perf_gate: {baseline['bench']}: "
          f"{args.current} vs baseline {args.baseline}")
    try:
        failures = checker(baseline, current, args)
    except Refused as err:
        print(f"perf_gate: comparison SKIPPED: {err}")
        return 4 if args.strict else 0
    if failures:
        for failure in failures:
            print(f"perf_gate: FAIL: {failure}", file=sys.stderr)
        return 2
    print("perf_gate: pass")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="perf_gate.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="validate BENCH_*.json schemas")
    lint.add_argument("files", nargs="+")
    lint.set_defaults(func=cmd_lint)

    check = sub.add_parser("check", help="compare a run against a baseline")
    check.add_argument("--baseline", required=True)
    check.add_argument("--current", required=True)
    check.add_argument(
        "--max-regress", type=float, default=DEFAULT_MAX_REGRESS,
        help="allowed per-stage slowdown fraction "
             f"(default {DEFAULT_MAX_REGRESS})",
    )
    check.add_argument(
        "--min-simd-speedup", type=float, default=DEFAULT_MIN_SIMD_SPEEDUP,
        help="required stage-2 scalar/SIMD ratio within the current run "
             f"(default {DEFAULT_MIN_SIMD_SPEEDUP})",
    )
    check.add_argument(
        "--strict", action="store_true",
        help="exit 4 instead of 0 when the comparison is skipped/refused",
    )
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
