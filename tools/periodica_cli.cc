// periodica_cli: mine obscure periodic patterns from a file.
//
//   # symbol file (single-letter symbols, whitespace ignored):
//   periodica_cli --input series.txt --threshold 0.7 --patterns
//
//   # numeric CSV column, discretized to 5 quantile levels first:
//   periodica_cli --input data.csv --csv_column 1 --levels 5
//       --discretizer equidepth --threshold 0.6 --format csv
//
//   # bounded-memory streaming detection with periodic checkpoints:
//   periodica_cli --stream --input feed.txt --max_period 512
//       --checkpoint state.pchk --checkpoint_every 100000
//   # ... after a crash, pick up where the last checkpoint left off:
//   periodica_cli --stream --input feed.txt --max_period 512
//       --checkpoint state.pchk --resume
//
// Prints per-period summaries, the (symbol, period, position) periodicities,
// and (with --patterns) the scored periodic patterns.
//
// Exit codes: 0 = success; 1 = runtime failure (unreadable input, bad data,
// I/O error, invalid checkpoint); 2 = usage error (bad flags); 3 = partial
// result (--deadline_ms expired mid-mine: the printed prefix is valid but
// periods past the cutoff were never examined).

#include <cctype>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "periodica/core/report.h"
#include "periodica/core/serialize.h"
#include "periodica/periodica.h"
#include "periodica/util/flags.h"

namespace periodica {
namespace {

constexpr char kExitCodeEpilog[] =
    "Exit codes:\n"
    "  0  success\n"
    "  1  runtime failure (unreadable input, bad data, I/O error, invalid\n"
    "     checkpoint)\n"
    "  2  usage error (unknown or malformed flags)\n"
    "  3  partial result: --deadline_ms expired mid-mine; the output is a\n"
    "     valid prefix, but periods past the cutoff were never examined\n";

Result<SymbolSeries> LoadInput(const std::string& path, std::int64_t csv_column,
                               std::int64_t levels,
                               const std::string& discretizer_name) {
  if (csv_column < 0) {
    return ReadSymbolSeries(path);
  }
  PERIODICA_ASSIGN_OR_RETURN(
      std::vector<double> values,
      ReadCsvColumn(path, static_cast<std::size_t>(csv_column)));
  if (values.empty()) {
    return Status::InvalidArgument("no numeric values in column " +
                                   std::to_string(csv_column));
  }
  const std::size_t k = static_cast<std::size_t>(levels);
  if (discretizer_name == "equiwidth") {
    PERIODICA_ASSIGN_OR_RETURN(EquiWidthDiscretizer discretizer,
                               EquiWidthDiscretizer::Fit(values, k));
    return discretizer.Apply(values);
  }
  if (discretizer_name == "equidepth") {
    PERIODICA_ASSIGN_OR_RETURN(EquiDepthDiscretizer discretizer,
                               EquiDepthDiscretizer::Fit(values, k));
    return discretizer.Apply(values);
  }
  if (discretizer_name == "gaussian") {
    PERIODICA_ASSIGN_OR_RETURN(GaussianDiscretizer discretizer,
                               GaussianDiscretizer::Fit(values, k));
    return discretizer.Apply(values);
  }
  return Status::InvalidArgument(
      "unknown --discretizer '" + discretizer_name +
      "' (expected equiwidth, equidepth or gaussian)");
}

/// Everything --stream mode needs, resolved from flags.
struct StreamConfig {
  std::string input;
  std::size_t max_period = 0;
  double threshold = 0.5;
  std::size_t min_period = 1;
  std::size_t min_pairs = 1;
  std::string checkpoint;
  std::size_t checkpoint_every = 0;
  bool resume = false;
  ResilientStream::Options resilience;
};

/// One-pass bounded-memory detection (StreamingPeriodDetector) with optional
/// periodic checkpointing and resume. The input file is read symbol by
/// symbol — never loaded whole — through a ResilientStream that applies the
/// configured out-of-alphabet policy; characters outside --alphabet surface
/// as out-of-range ids for that policy to handle.
Result<MiningResult> RunStream(const StreamConfig& config,
                               const Alphabet& alphabet) {
  StreamingPeriodDetector::Options detector_options;
  detector_options.max_period = config.max_period;
  PERIODICA_ASSIGN_OR_RETURN(
      StreamingPeriodDetector detector,
      StreamingPeriodDetector::Create(alphabet, detector_options));
  if (config.resume) {
    if (config.checkpoint.empty()) {
      return Status::InvalidArgument("--resume requires --checkpoint");
    }
    PERIODICA_ASSIGN_OR_RETURN(detector,
                               LoadDetectorCheckpoint(config.checkpoint));
    if (detector.alphabet().size() != alphabet.size()) {
      return Status::InvalidArgument(
          "checkpoint alphabet has " +
          std::to_string(detector.alphabet().size()) + " symbols but --alphabet has " +
          std::to_string(alphabet.size()));
    }
    if (detector.max_period() != config.max_period) {
      return Status::InvalidArgument(
          "checkpoint max_period " + std::to_string(detector.max_period()) +
          " does not match --max_period " +
          std::to_string(config.max_period));
    }
    std::cerr << "resumed from '" << config.checkpoint << "' at stream position "
              << detector.size() << "\n";
  }

  auto file = std::make_shared<std::ifstream>(config.input);
  if (!*file) {
    return Status::IOError("cannot open '" + config.input + "'");
  }
  // Characters are mapped through the alphabet; anything unknown (or any
  // read failure) is deferred to the ResilientStream policy via an
  // out-of-range id. Whitespace is not data and is always skipped.
  const std::size_t sigma = alphabet.size();
  FunctionStream raw(alphabet, [file, &alphabet,
                                sigma]() -> std::optional<SymbolId> {
    char c = 0;
    while (file->get(c)) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      const auto id = alphabet.Find(std::string(1, c));
      if (id.ok()) return *id;
      return static_cast<SymbolId>(sigma);  // out-of-alphabet marker
    }
    return std::nullopt;
  });
  ResilientStream stream(&raw, config.resilience);

  // Skip what the restored snapshot already incorporated. The resilient
  // policy replays deterministically, so `detector.size()` *delivered*
  // symbols lands exactly where the checkpoint was taken.
  for (std::size_t i = 0; i < detector.size(); ++i) {
    if (!stream.Next().has_value()) {
      PERIODICA_RETURN_NOT_OK(stream.status());
      return Status::InvalidArgument(
          "checkpoint is ahead of '" + config.input + "': snapshot holds " +
          std::to_string(detector.size()) + " symbols, input delivered " +
          std::to_string(i));
    }
  }

  std::size_t since_checkpoint = 0;
  while (const std::optional<SymbolId> symbol = stream.Next()) {
    detector.Append(*symbol);
    if (!config.checkpoint.empty() && config.checkpoint_every != 0 &&
        ++since_checkpoint >= config.checkpoint_every) {
      PERIODICA_RETURN_NOT_OK(SaveCheckpoint(detector, config.checkpoint));
      since_checkpoint = 0;
    }
  }
  PERIODICA_RETURN_NOT_OK(stream.status());
  if (!config.checkpoint.empty()) {
    PERIODICA_RETURN_NOT_OK(SaveCheckpoint(detector, config.checkpoint));
  }
  if (stream.skipped() != 0 || stream.remapped() != 0 ||
      stream.retries() != 0) {
    std::cerr << "stream: " << stream.skipped() << " skipped, "
              << stream.remapped() << " remapped, " << stream.retries()
              << " retries\n";
  }

  MiningResult result;
  result.periodicities =
      detector.Detect(config.threshold, config.min_period, config.min_pairs);
  result.engine_used = MinerEngine::kFft;
  result.series_length = detector.size();
  result.alphabet_size = alphabet.size();
  return result;
}

int Run(int argc, char** argv) {
  std::string input;
  std::int64_t csv_column = -1;
  std::int64_t levels = 5;
  std::string discretizer = "equidepth";
  double threshold = 0.5;
  std::int64_t min_period = 2;
  std::int64_t max_period = 0;
  std::int64_t min_pairs = 1;
  bool patterns = false;
  std::int64_t pattern_period = 0;
  std::string engine = "auto";
  std::int64_t threads = 1;
  std::string format = "text";
  std::int64_t max_rows = 0;
  double significance = 0.0;
  std::string save_periods;
  std::string save_patterns;
  std::int64_t deadline_ms = 0;
  bool stream = false;
  std::string alphabet_chars = "abcdefghijklmnopqrstuvwxyz";
  std::string checkpoint;
  std::int64_t checkpoint_every = 100000;
  bool resume = false;
  std::string on_bad_symbol = "error";
  std::int64_t remap_symbol = 0;
  std::int64_t max_retries = 3;

  FlagSet flags("periodica_cli");
  flags.AddString("input", &input,
                  "symbol file, or CSV when --csv_column is set");
  flags.AddInt64("csv_column", &csv_column,
                 "0-based numeric CSV column to discretize (-1 = symbol file)");
  flags.AddInt64("levels", &levels, "discretization levels for CSV input");
  flags.AddString("discretizer", &discretizer,
                  "equiwidth | equidepth | gaussian");
  flags.AddDouble("threshold", &threshold, "periodicity threshold psi");
  flags.AddInt64("min_period", &min_period, "smallest period examined");
  flags.AddInt64("max_period", &max_period, "largest period (0 = n/2)");
  flags.AddInt64("min_pairs", &min_pairs,
                 "repetitions a phase must offer (1 = paper's definition)");
  flags.AddBool("patterns", &patterns, "also mine periodic patterns");
  flags.AddInt64("pattern_period", &pattern_period,
                 "restrict pattern mining to this period (0 = all detected)");
  flags.AddString("engine", &engine, "auto | exact | fft");
  flags.AddInt64("threads", &threads,
                 "worker threads for the FFT engine (0 = all hardware "
                 "threads, 1 = sequential); output is identical for every "
                 "value");
  flags.AddString("format", &format, "text | csv");
  flags.AddInt64("max_rows", &max_rows, "cap rows per report section (0 = all)");
  flags.AddDouble("significance", &significance,
                  "drop periodicities with binomial p-value above this "
                  "(0 = no screening)");
  flags.AddString("save_periods", &save_periods,
                  "also write the periodicities to this CSV file");
  flags.AddString("save_patterns", &save_patterns,
                  "also write the patterns to this CSV file");
  flags.AddInt64("deadline_ms", &deadline_ms,
                 "stop mining after this many milliseconds and report the "
                 "partial prefix (0 = no deadline)");
  flags.AddBool("stream", &stream,
                "one-pass bounded-memory streaming detection "
                "(StreamingPeriodDetector); requires --max_period");
  flags.AddString("alphabet", &alphabet_chars,
                  "stream mode: the characters of the alphabet, in symbol-id "
                  "order");
  flags.AddString("checkpoint", &checkpoint,
                  "stream mode: snapshot file written atomically during and "
                  "after the run");
  flags.AddInt64("checkpoint_every", &checkpoint_every,
                 "stream mode: symbols between snapshots (0 = only at end)");
  flags.AddBool("resume", &resume,
                "stream mode: restore --checkpoint and continue from the "
                "snapshot's stream position");
  flags.AddString("on_bad_symbol", &on_bad_symbol,
                  "stream mode: error | skip | remap — what to do with "
                  "characters outside --alphabet");
  flags.AddInt64("remap_symbol", &remap_symbol,
                 "stream mode: symbol id substituted under "
                 "--on_bad_symbol remap");
  flags.AddInt64("max_retries", &max_retries,
                 "stream mode: transient source-error retries per symbol");
  flags.SetEpilog(kExitCodeEpilog);

  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n";
    return 2;
  }
  if (input.empty()) {
    std::cerr << "--input is required\n" << flags.Usage();
    return 2;
  }

  ReportOptions report;
  report.max_rows = static_cast<std::size_t>(max_rows);
  if (format == "csv") {
    report.format = ReportFormat::kCsv;
  } else if (format != "text") {
    std::cerr << "unknown --format '" << format << "'\n";
    return 2;
  }

  // Everything after mining is shared between batch and stream mode.
  const auto emit = [&](const MiningResult& result,
                        const Alphabet& alphabet) -> int {
    if (!save_periods.empty()) {
      if (Status status = WritePeriodicityCsv(result.periodicities, alphabet,
                                              save_periods);
          !status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
    }
    if (!save_patterns.empty()) {
      if (Status status =
              WritePatternCsv(result.patterns, alphabet, save_patterns);
          !status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
    }
    if (Status status = RenderMiningResult(result, alphabet, report, std::cout);
        !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    if (result.partial) {
      std::cerr << "warning: deadline expired mid-mine; results above are a "
                   "valid prefix (exit code 3)\n";
      return 3;
    }
    return 0;
  };

  if (stream) {
    if (max_period <= 0) {
      std::cerr << "--stream requires --max_period > 0 (it fixes the memory "
                   "budget)\n";
      return 2;
    }
    StreamConfig config;
    config.input = input;
    config.max_period = static_cast<std::size_t>(max_period);
    config.threshold = threshold;
    config.min_period = static_cast<std::size_t>(min_period);
    config.min_pairs = static_cast<std::size_t>(min_pairs);
    config.checkpoint = checkpoint;
    config.checkpoint_every = checkpoint_every > 0
                                  ? static_cast<std::size_t>(checkpoint_every)
                                  : 0;
    config.resume = resume;
    if (on_bad_symbol == "error") {
      config.resilience.bad_symbol_policy = ResilientStream::BadSymbolPolicy::kError;
    } else if (on_bad_symbol == "skip") {
      config.resilience.bad_symbol_policy = ResilientStream::BadSymbolPolicy::kSkip;
    } else if (on_bad_symbol == "remap") {
      config.resilience.bad_symbol_policy = ResilientStream::BadSymbolPolicy::kRemap;
    } else {
      std::cerr << "unknown --on_bad_symbol '" << on_bad_symbol
                << "' (expected error, skip or remap)\n";
      return 2;
    }
    if (remap_symbol < 0 ||
        static_cast<std::size_t>(remap_symbol) >= alphabet_chars.size()) {
      std::cerr << "--remap_symbol must name a symbol of --alphabet\n";
      return 2;
    }
    config.resilience.remap_symbol = static_cast<SymbolId>(remap_symbol);
    if (max_retries < 0) {
      std::cerr << "--max_retries must be >= 0\n";
      return 2;
    }
    config.resilience.max_retries = static_cast<std::size_t>(max_retries);

    std::vector<std::string> names;
    names.reserve(alphabet_chars.size());
    for (const char c : alphabet_chars) names.emplace_back(1, c);
    auto alphabet = Alphabet::FromNames(std::move(names));
    if (!alphabet.ok()) {
      std::cerr << "--alphabet: " << alphabet.status() << "\n";
      return 2;
    }

    auto result = RunStream(config, *alphabet);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    return emit(*result, *alphabet);
  }

  auto series = LoadInput(input, csv_column, levels, discretizer);
  if (!series.ok()) {
    std::cerr << series.status() << "\n";
    return 1;
  }

  MinerOptions options;
  options.threshold = threshold;
  options.min_period = static_cast<std::size_t>(min_period);
  options.max_period = static_cast<std::size_t>(max_period);
  options.min_pairs = static_cast<std::size_t>(min_pairs);
  options.mine_patterns = patterns;
  if (pattern_period > 0) {
    options.pattern_periods = {static_cast<std::size_t>(pattern_period)};
  }
  options.significance_p_value = significance;
  if (engine == "exact") {
    options.engine = MinerEngine::kExact;
  } else if (engine == "fft") {
    options.engine = MinerEngine::kFft;
  } else if (engine != "auto") {
    std::cerr << "unknown --engine '" << engine << "'\n";
    return 2;
  }
  if (threads < 0) {
    std::cerr << "--threads must be >= 0\n";
    return 2;
  }
  options.num_threads = static_cast<std::size_t>(threads);
  if (deadline_ms < 0) {
    std::cerr << "--deadline_ms must be >= 0\n";
    return 2;
  }
  options.deadline_ms = static_cast<std::size_t>(deadline_ms);

  auto result = ObscureMiner(options).Mine(*series);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  return emit(*result, series->alphabet());
}

}  // namespace
}  // namespace periodica

int main(int argc, char** argv) { return periodica::Run(argc, argv); }
