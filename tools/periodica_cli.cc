// periodica_cli: mine obscure periodic patterns from a file.
//
//   # symbol file (single-letter symbols, whitespace ignored):
//   periodica_cli --input series.txt --threshold 0.7 --patterns
//
//   # numeric CSV column, discretized to 5 quantile levels first:
//   periodica_cli --input data.csv --csv_column 1 --levels 5
//       --discretizer equidepth --threshold 0.6 --format csv
//
// Prints per-period summaries, the (symbol, period, position) periodicities,
// and (with --patterns) the scored periodic patterns.

#include <iostream>
#include <memory>
#include <string>

#include "periodica/core/report.h"
#include "periodica/core/serialize.h"
#include "periodica/periodica.h"
#include "periodica/util/flags.h"

namespace periodica {
namespace {

Result<SymbolSeries> LoadInput(const std::string& path, std::int64_t csv_column,
                               std::int64_t levels,
                               const std::string& discretizer_name) {
  if (csv_column < 0) {
    return ReadSymbolSeries(path);
  }
  PERIODICA_ASSIGN_OR_RETURN(
      std::vector<double> values,
      ReadCsvColumn(path, static_cast<std::size_t>(csv_column)));
  if (values.empty()) {
    return Status::InvalidArgument("no numeric values in column " +
                                   std::to_string(csv_column));
  }
  const std::size_t k = static_cast<std::size_t>(levels);
  if (discretizer_name == "equiwidth") {
    PERIODICA_ASSIGN_OR_RETURN(EquiWidthDiscretizer discretizer,
                               EquiWidthDiscretizer::Fit(values, k));
    return discretizer.Apply(values);
  }
  if (discretizer_name == "equidepth") {
    PERIODICA_ASSIGN_OR_RETURN(EquiDepthDiscretizer discretizer,
                               EquiDepthDiscretizer::Fit(values, k));
    return discretizer.Apply(values);
  }
  if (discretizer_name == "gaussian") {
    PERIODICA_ASSIGN_OR_RETURN(GaussianDiscretizer discretizer,
                               GaussianDiscretizer::Fit(values, k));
    return discretizer.Apply(values);
  }
  return Status::InvalidArgument(
      "unknown --discretizer '" + discretizer_name +
      "' (expected equiwidth, equidepth or gaussian)");
}

int Run(int argc, char** argv) {
  std::string input;
  std::int64_t csv_column = -1;
  std::int64_t levels = 5;
  std::string discretizer = "equidepth";
  double threshold = 0.5;
  std::int64_t min_period = 2;
  std::int64_t max_period = 0;
  std::int64_t min_pairs = 1;
  bool patterns = false;
  std::int64_t pattern_period = 0;
  std::string engine = "auto";
  std::int64_t threads = 1;
  std::string format = "text";
  std::int64_t max_rows = 0;
  double significance = 0.0;
  std::string save_periods;
  std::string save_patterns;

  FlagSet flags("periodica_cli");
  flags.AddString("input", &input,
                  "symbol file, or CSV when --csv_column is set");
  flags.AddInt64("csv_column", &csv_column,
                 "0-based numeric CSV column to discretize (-1 = symbol file)");
  flags.AddInt64("levels", &levels, "discretization levels for CSV input");
  flags.AddString("discretizer", &discretizer,
                  "equiwidth | equidepth | gaussian");
  flags.AddDouble("threshold", &threshold, "periodicity threshold psi");
  flags.AddInt64("min_period", &min_period, "smallest period examined");
  flags.AddInt64("max_period", &max_period, "largest period (0 = n/2)");
  flags.AddInt64("min_pairs", &min_pairs,
                 "repetitions a phase must offer (1 = paper's definition)");
  flags.AddBool("patterns", &patterns, "also mine periodic patterns");
  flags.AddInt64("pattern_period", &pattern_period,
                 "restrict pattern mining to this period (0 = all detected)");
  flags.AddString("engine", &engine, "auto | exact | fft");
  flags.AddInt64("threads", &threads,
                 "worker threads for the FFT engine (0 = all hardware "
                 "threads, 1 = sequential); output is identical for every "
                 "value");
  flags.AddString("format", &format, "text | csv");
  flags.AddInt64("max_rows", &max_rows, "cap rows per report section (0 = all)");
  flags.AddDouble("significance", &significance,
                  "drop periodicities with binomial p-value above this "
                  "(0 = no screening)");
  flags.AddString("save_periods", &save_periods,
                  "also write the periodicities to this CSV file");
  flags.AddString("save_patterns", &save_patterns,
                  "also write the patterns to this CSV file");

  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n";
    return 2;
  }
  if (input.empty()) {
    std::cerr << "--input is required\n" << flags.Usage();
    return 2;
  }

  auto series = LoadInput(input, csv_column, levels, discretizer);
  if (!series.ok()) {
    std::cerr << series.status() << "\n";
    return 1;
  }

  MinerOptions options;
  options.threshold = threshold;
  options.min_period = static_cast<std::size_t>(min_period);
  options.max_period = static_cast<std::size_t>(max_period);
  options.min_pairs = static_cast<std::size_t>(min_pairs);
  options.mine_patterns = patterns;
  if (pattern_period > 0) {
    options.pattern_periods = {static_cast<std::size_t>(pattern_period)};
  }
  options.significance_p_value = significance;
  if (engine == "exact") {
    options.engine = MinerEngine::kExact;
  } else if (engine == "fft") {
    options.engine = MinerEngine::kFft;
  } else if (engine != "auto") {
    std::cerr << "unknown --engine '" << engine << "'\n";
    return 2;
  }
  if (threads < 0) {
    std::cerr << "--threads must be >= 0\n";
    return 2;
  }
  options.num_threads = static_cast<std::size_t>(threads);

  auto result = ObscureMiner(options).Mine(*series);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  if (!save_periods.empty()) {
    if (Status status = WritePeriodicityCsv(result->periodicities,
                                            series->alphabet(), save_periods);
        !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }
  if (!save_patterns.empty()) {
    if (Status status = WritePatternCsv(result->patterns, series->alphabet(),
                                        save_patterns);
        !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }

  ReportOptions report;
  report.max_rows = static_cast<std::size_t>(max_rows);
  if (format == "csv") {
    report.format = ReportFormat::kCsv;
  } else if (format != "text") {
    std::cerr << "unknown --format '" << format << "'\n";
    return 2;
  }
  if (Status status =
          RenderMiningResult(*result, series->alphabet(), report, std::cout);
      !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace periodica

int main(int argc, char** argv) { return periodica::Run(argc, argv); }
