// periodica_client: one-shot command-line client for periodicad
// (docs/SERVING.md). Sends a single newline-delimited JSON request over the
// daemon's Unix socket, prints the response line to stdout, and maps the
// structured outcome to an exit code scripts can branch on:
//
//   0  success (response ok:true, not partial)
//   1  request failed (error response other than OVERLOADED) or I/O error
//   2  usage error
//   3  partial result (ok:true but the deadline/cancellation truncated it)
//   4  overloaded: the daemon rejected the request with a retry-after hint
//
// Examples:
//   periodica_client --socket=/run/periodicad.sock --method=ping
//   periodica_client --socket=... --method=mine
//       --params='{"series":"abcabcabcabc","threshold":0.9}'

#include <cstdio>
#include <string>

#include "periodica/util/flags.h"
#include "periodica/util/json.h"
#include "unix_socket.h"

namespace periodica::tools {
namespace {

using util::JsonValue;

int Main(int argc, char** argv) {
  std::string socket_path;
  std::string method;
  std::string params_json = "{}";
  std::int64_t id = 1;
  FlagSet flags("periodica_client");
  flags.AddString("socket", &socket_path, "daemon Unix socket path");
  flags.AddString("method", &method,
                  "request method (ping, stats, mine, stream_open, "
                  "stream_feed, stream_detect, stream_close)");
  flags.AddString("params", &params_json, "request params as a JSON object");
  flags.AddInt64("id", &id, "request id echoed by the daemon");
  flags.SetEpilog(
      "Exit codes: 0 success; 1 error; 2 usage; 3 partial result;\n"
      "4 overloaded (retry later; see error.retry_after_ms).");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "periodica_client: %s\n%s",
                 status.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (socket_path.empty() || method.empty()) {
    std::fprintf(stderr,
                 "periodica_client: --socket and --method are required\n%s",
                 flags.Usage().c_str());
    return 2;
  }
  const Result<JsonValue> params = JsonValue::Parse(params_json);
  if (!params.ok() || !params.value().is_object()) {
    std::fprintf(stderr, "periodica_client: --params is not a JSON object");
    if (!params.ok()) {
      std::fprintf(stderr, ": %s", params.status().message().c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  JsonValue::Object request;
  request["id"] = id;
  request["method"] = method;
  request["params"] = params.value();

  Result<FdHandle> fd = ConnectUnix(socket_path);
  if (!fd.ok()) {
    std::fprintf(stderr, "periodica_client: %s\n",
                 fd.status().ToString().c_str());
    return 1;
  }
  if (const Status sent = SendLine(fd.value().get(),
                                   JsonValue(std::move(request)).Dump());
      !sent.ok()) {
    std::fprintf(stderr, "periodica_client: %s\n", sent.ToString().c_str());
    return 1;
  }
  LineReader reader(fd.value().get());
  const Result<std::string> line = reader.Next();
  if (!line.ok()) {
    std::fprintf(stderr, "periodica_client: no response: %s\n",
                 line.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", line.value().c_str());

  const Result<JsonValue> response = JsonValue::Parse(line.value());
  if (!response.ok()) {
    std::fprintf(stderr, "periodica_client: unparseable response\n");
    return 1;
  }
  if (response.value().GetBool("ok", false)) {
    const JsonValue* result = response.value().Find("result");
    if (result != nullptr && result->GetBool("partial", false)) return 3;
    return 0;
  }
  const JsonValue* error = response.value().Find("error");
  if (error != nullptr && error->GetString("code", "") == "OVERLOADED") {
    return 4;
  }
  return 1;
}

}  // namespace
}  // namespace periodica::tools

int main(int argc, char** argv) { return periodica::tools::Main(argc, argv); }
