// periodica_client: one-shot command-line client for periodicad
// (docs/SERVING.md). Sends a single newline-delimited JSON request over the
// daemon's Unix socket (--socket) or a TCP endpoint (--tcp host:port, which
// also reaches periodica_router), prints the response line to stdout, and
// maps the structured outcome to an exit code scripts can branch on:
//
//   0  success (response ok:true, not partial)
//   1  request failed (error response other than OVERLOADED) or I/O error
//   2  usage error
//   3  partial result (ok:true but the deadline/cancellation truncated it)
//   4  overloaded: the daemon rejected the request with a retry-after hint
//
// With --max_retries=N the client honors those hints itself: an OVERLOADED
// or QUOTA_EXCEEDED rejection is retried up to N times on a fresh
// connection, sleeping error.retry_after_ms (or an exponential fallback)
// with jitter, capped by --max_backoff_ms. Only those two codes retry —
// they are the daemon's explicit "try again later"; every other error is
// final and surfaces immediately.
//
// Examples:
//   periodica_client --socket=/run/periodicad.sock --method=ping
//   periodica_client --socket=... --method=mine --max_retries=3
//       --params='{"series":"abcabcabcabc","threshold":0.9}'

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "periodica/util/flags.h"
#include "periodica/util/json.h"
#include "periodica/util/rng.h"
#include "retry_backoff.h"
#include "unix_socket.h"

namespace periodica::tools {
namespace {

using util::JsonValue;

/// The structured rejections worth retrying: the daemon says the request
/// never ran and hints when to come back.
bool IsRetryableCode(const std::string& code) {
  return code == "OVERLOADED" || code == "QUOTA_EXCEEDED";
}

/// One request/response round trip on a fresh connection. Returns the exit
/// code; fills `retry_after_ms` (from the error payload, 0 if absent) and
/// `retryable` when the daemon sent a structured try-again-later rejection.
int RunOnce(const std::string& socket_path, const std::string& tcp_spec,
            const std::string& request_line, std::int64_t* retry_after_ms,
            bool* retryable) {
  *retry_after_ms = 0;
  *retryable = false;
  Result<FdHandle> fd = DialServer(socket_path, tcp_spec);
  if (!fd.ok()) {
    std::fprintf(stderr, "periodica_client: %s\n",
                 fd.status().ToString().c_str());
    return 1;
  }
  if (const Status sent = SendLine(fd.value().get(), request_line);
      !sent.ok()) {
    std::fprintf(stderr, "periodica_client: %s\n", sent.ToString().c_str());
    return 1;
  }
  LineReader reader(fd.value().get());
  const Result<std::string> line = reader.Next();
  if (!line.ok()) {
    std::fprintf(stderr, "periodica_client: no response: %s\n",
                 line.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", line.value().c_str());

  const Result<JsonValue> response = JsonValue::Parse(line.value());
  if (!response.ok()) {
    std::fprintf(stderr, "periodica_client: unparseable response\n");
    return 1;
  }
  if (response.value().GetBool("ok", false)) {
    const JsonValue* result = response.value().Find("result");
    if (result != nullptr && result->GetBool("partial", false)) return 3;
    return 0;
  }
  const JsonValue* error = response.value().Find("error");
  if (error != nullptr) {
    const std::string code = error->GetString("code", "");
    if (IsRetryableCode(code)) {
      *retryable = true;
      *retry_after_ms = static_cast<std::int64_t>(
          error->GetNumber("retry_after_ms", 0));
      return 4;
    }
  }
  return 1;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_spec;
  std::string method;
  std::string params_json = "{}";
  std::int64_t id = 1;
  std::int64_t max_retries = 0;
  std::int64_t max_backoff_ms = 2000;
  FlagSet flags("periodica_client");
  flags.AddString("socket", &socket_path, "daemon Unix socket path");
  flags.AddString("tcp", &tcp_spec,
                  "daemon/router TCP endpoint as host:port (overrides "
                  "--socket)");
  flags.AddString("method", &method,
                  "request method (ping, stats, mine, stream_open, "
                  "stream_feed, stream_detect, stream_close)");
  flags.AddString("params", &params_json, "request params as a JSON object");
  flags.AddInt64("id", &id, "request id echoed by the daemon");
  flags.AddInt64("max_retries", &max_retries,
                 "retry OVERLOADED/QUOTA_EXCEEDED rejections up to this many "
                 "times, honoring error.retry_after_ms (0 = fail fast)");
  flags.AddInt64("max_backoff_ms", &max_backoff_ms,
                 "cap on any single retry sleep");
  flags.SetEpilog(
      "Exit codes: 0 success; 1 error; 2 usage; 3 partial result;\n"
      "4 overloaded (retry later; see error.retry_after_ms).");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "periodica_client: %s\n%s",
                 status.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if ((socket_path.empty() && tcp_spec.empty()) || method.empty()) {
    std::fprintf(stderr,
                 "periodica_client: --socket (or --tcp) and --method are "
                 "required\n%s",
                 flags.Usage().c_str());
    return 2;
  }
  if (max_retries < 0 || max_backoff_ms < 0) {
    std::fprintf(stderr,
                 "periodica_client: --max_retries and --max_backoff_ms must "
                 "be non-negative\n");
    return 2;
  }
  const Result<JsonValue> params = JsonValue::Parse(params_json);
  if (!params.ok() || !params.value().is_object()) {
    std::fprintf(stderr, "periodica_client: --params is not a JSON object");
    if (!params.ok()) {
      std::fprintf(stderr, ": %s", params.status().message().c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  JsonValue::Object request;
  request["id"] = id;
  request["method"] = method;
  request["params"] = params.value();
  const std::string request_line = JsonValue(std::move(request)).Dump();

  // Jitter is deterministic per process invocation but spread across
  // concurrent clients by pid, so a thundering herd that got rejected
  // together does not come back together.
  Rng rng(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(::getpid()));

  for (std::int64_t attempt = 0;; ++attempt) {
    std::int64_t retry_after_ms = 0;
    bool retryable = false;
    const int code = RunOnce(socket_path, tcp_spec, request_line,
                             &retry_after_ms, &retryable);
    if (!retryable || attempt >= max_retries) return code;

    // Backoff: the daemon's hint when it gave one, else 100ms doubling per
    // attempt; capped, then jittered ±25% so synchronized clients spread
    // (policy shared with the router — tools/retry_backoff.h).
    const std::int64_t backoff = NextBackoffMs(
        attempt, retry_after_ms, max_backoff_ms, /*base_ms=*/100, &rng);
    std::fprintf(stderr,
                 "periodica_client: rejected (attempt %lld of %lld), "
                 "retrying in %lld ms\n",
                 static_cast<long long>(attempt + 1),
                 static_cast<long long>(max_retries + 1),
                 static_cast<long long>(backoff));
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

}  // namespace
}  // namespace periodica::tools

int main(int argc, char** argv) { return periodica::tools::Main(argc, argv); }
