// periodica_gen: write the library's workloads to files, so every dataset
// the benches and examples use can be regenerated and inspected from the
// command line (and fed back through periodica_cli).
//
//   # the paper's synthetic protocol: period 25, 10 symbols, 15% R noise
//   periodica_gen --kind synthetic --length 100000 --period 25
//       --noise_ratio 0.15 --noise r --output series.txt
//
//   # the domain simulators (raw values as CSV, or discretized symbols)
//   periodica_gen --kind retail --weeks 52 --output walmart.txt
//   periodica_gen --kind power --days 365 --csv --output cimeg.csv
//   periodica_gen --kind events --ticks 40000 --output log.txt

#include <iostream>
#include <string>

#include "periodica/periodica.h"
#include "periodica/util/flags.h"

namespace periodica {
namespace {

int Run(int argc, char** argv) {
  std::string kind = "synthetic";
  std::string output;
  bool csv = false;
  // synthetic
  std::int64_t length = 100000;
  std::int64_t period = 25;
  std::int64_t alphabet = 10;
  std::string distribution = "uniform";
  double noise_ratio = 0.0;
  std::string noise = "r";
  // domain
  std::int64_t weeks = 52;
  std::int64_t days = 365;
  std::int64_t ticks = 40000;
  bool dst_anomaly = false;
  std::int64_t seed = 1;

  FlagSet flags("periodica_gen");
  flags.AddString("kind", &kind, "synthetic | retail | power | events");
  flags.AddString("output", &output, "output file (required)");
  flags.AddBool("csv", &csv,
                "write raw numeric values as CSV instead of discretized "
                "symbols (retail/power only)");
  flags.AddInt64("length", &length, "synthetic: series length");
  flags.AddInt64("period", &period, "synthetic: embedded period");
  flags.AddInt64("alphabet", &alphabet, "synthetic: alphabet size (<= 26)");
  flags.AddString("distribution", &distribution,
                  "synthetic: uniform | normal");
  flags.AddDouble("noise_ratio", &noise_ratio, "synthetic: noise ratio");
  flags.AddString("noise", &noise, "synthetic: noise kinds, subset of r i d");
  flags.AddInt64("weeks", &weeks, "retail: weeks of hourly data");
  flags.AddInt64("days", &days, "power: days of daily data");
  flags.AddInt64("ticks", &ticks, "events: log length");
  flags.AddBool("dst_anomaly", &dst_anomaly,
                "retail: inject the daylight-saving shift");
  flags.AddInt64("seed", &seed, "generator seed");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n";
    return 2;
  }
  if (output.empty()) {
    std::cerr << "--output is required\n" << flags.Usage();
    return 2;
  }

  Result<SymbolSeries> series = Status::Internal("unset");
  if (kind == "synthetic") {
    SyntheticSpec spec;
    spec.length = static_cast<std::size_t>(length);
    spec.period = static_cast<std::size_t>(period);
    spec.alphabet_size = static_cast<std::size_t>(alphabet);
    spec.seed = static_cast<std::uint64_t>(seed);
    if (distribution == "normal") {
      spec.distribution = SymbolDistribution::kNormal;
    } else if (distribution != "uniform") {
      std::cerr << "unknown --distribution '" << distribution << "'\n";
      return 2;
    }
    series = GeneratePerfect(spec);
    if (series.ok() && noise_ratio > 0.0) {
      series = ApplyNoise(
          *series,
          NoiseSpec::Combined(noise_ratio,
                              noise.find('r') != std::string::npos,
                              noise.find('i') != std::string::npos,
                              noise.find('d') != std::string::npos,
                              static_cast<std::uint64_t>(seed) + 1));
    }
  } else if (kind == "retail") {
    RetailTransactionSimulator::Options options;
    options.weeks = static_cast<std::size_t>(weeks);
    options.dst_anomaly = dst_anomaly;
    options.seed = static_cast<std::uint64_t>(seed);
    RetailTransactionSimulator simulator(options);
    if (csv) {
      if (Status status = WriteCsvColumn(output, simulator.GenerateCounts());
          !status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
      std::cout << "wrote " << options.weeks * 7 * 24
                << " hourly counts to " << output << "\n";
      return 0;
    }
    series = simulator.GenerateSeries();
  } else if (kind == "power") {
    PowerConsumptionSimulator::Options options;
    options.days = static_cast<std::size_t>(days);
    options.seed = static_cast<std::uint64_t>(seed);
    PowerConsumptionSimulator simulator(options);
    if (csv) {
      if (Status status =
              WriteCsvColumn(output, simulator.GenerateReadings());
          !status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
      std::cout << "wrote " << options.days << " daily readings to " << output
                << "\n";
      return 0;
    }
    series = simulator.GenerateSeries();
  } else if (kind == "events") {
    EventLogSimulator::Options options;
    options.ticks = static_cast<std::size_t>(ticks);
    options.seed = static_cast<std::uint64_t>(seed);
    options.jobs.push_back({60, 7, 0.95, 0});
    options.jobs.push_back({45, 11, 0.9, 0});
    series = EventLogSimulator(options).Generate();
    if (series.ok()) {
      // Event alphabets are multi-letter; re-encode as single letters for
      // the symbol-file format (idle=a, job0=b, job1=c, bg0..=d..).
      SymbolSeries encoded(Alphabet::Latin(series->alphabet().size()));
      for (std::size_t i = 0; i < series->size(); ++i) {
        encoded.Append((*series)[i]);
      }
      series = std::move(encoded);
    }
  } else {
    std::cerr << "unknown --kind '" << kind << "'\n";
    return 2;
  }

  if (!series.ok()) {
    std::cerr << series.status() << "\n";
    return 1;
  }
  if (csv) {
    std::cerr << "--csv is only supported for retail/power\n";
    return 2;
  }
  if (Status status = WriteSymbolSeries(output, *series); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "wrote " << series->size() << " symbols (alphabet "
            << series->alphabet().size() << ") to " << output << "\n";
  return 0;
}

}  // namespace
}  // namespace periodica

int main(int argc, char** argv) { return periodica::Run(argc, argv); }
