// periodica_load: closed-loop load generator for periodicad, used by
// tools/soak.sh and by hand when sizing a deployment (docs/SERVING.md).
//
// Each of --concurrency worker threads loops for --seconds: connect, send a
// `mine` request for a synthetic periodic series, read the response, tally
// the outcome. OVERLOADED responses are part of normal operation — the
// worker honors error.retry_after_ms (capped) and tries again; connection
// errors are retried with a short backoff, since the soak kills and drains
// the daemon mid-run on purpose.
//
// Prints a one-line JSON summary to stdout, e.g.
//   {"errors":0,"ok":412,"overloaded":118,"partial":3,
//    "resource_exhausted":0,"sent":533}
// and exits 0 when every response was structured (ok / overloaded /
// resource-exhausted / partial), 1 when any malformed or unexpected
// response was seen. Connection failures are tallied separately
// ("connect_errors") and do not fail the run.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "periodica/util/flags.h"
#include "periodica/util/json.h"
#include "unix_socket.h"

namespace periodica::tools {
namespace {

using util::JsonValue;

/// Per-outcome request counters shared by the load workers.
///
/// Ordering: relaxed (the fetch_add default is stronger than needed, but
/// these are pure tallies) — each counter is independent, nothing is
/// published through them, and the final report reads them after join(),
/// which already orders every worker's writes before the read.
struct Tally {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> partial{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> resource_exhausted{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> connect_errors{0};
};

/// A periodic series of `n` symbols with period `period` over letters
/// a..a+sigma-1, plus ~10% replacement noise so mining does real work.
std::string MakeSeries(std::mt19937_64& rng, std::size_t n,
                       std::size_t period, std::size_t sigma) {
  std::string pattern;
  pattern.reserve(period);
  std::uniform_int_distribution<int> symbol(0, static_cast<int>(sigma) - 1);
  for (std::size_t i = 0; i < period; ++i) {
    pattern.push_back(static_cast<char>('a' + symbol(rng)));
  }
  std::string series;
  series.reserve(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    char c = pattern[i % period];
    if (unit(rng) < 0.1) c = static_cast<char>('a' + symbol(rng));
    series.push_back(c);
  }
  return series;
}

void Worker(const std::string& socket_path, std::size_t n, std::size_t period,
            std::size_t sigma, std::chrono::steady_clock::time_point stop_at,
            std::uint64_t seed, Tally* tally) {
  std::mt19937_64 rng(seed);
  while (std::chrono::steady_clock::now() < stop_at) {
    Result<FdHandle> fd = ConnectUnix(socket_path);
    if (!fd.ok()) {
      tally->connect_errors.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    LineReader reader(fd.value().get());
    // Reuse one connection for a few requests, as a real client would.
    for (int burst = 0; burst < 8; ++burst) {
      if (std::chrono::steady_clock::now() >= stop_at) break;
      JsonValue::Object params;
      params["series"] = MakeSeries(rng, n, period, sigma);
      params["threshold"] = 0.6;
      params["max_entries_returned"] = std::size_t{5};
      JsonValue::Object request;
      request["id"] = std::size_t{1};
      request["method"] = "mine";
      request["params"] = JsonValue(std::move(params));
      tally->sent.fetch_add(1);
      if (!SendLine(fd.value().get(), JsonValue(std::move(request)).Dump())
               .ok()) {
        tally->connect_errors.fetch_add(1);
        break;
      }
      const Result<std::string> line = reader.Next();
      if (!line.ok()) {
        // Mid-drain the daemon closes connections; that's expected.
        tally->connect_errors.fetch_add(1);
        break;
      }
      const Result<JsonValue> response = JsonValue::Parse(line.value());
      if (!response.ok()) {
        tally->errors.fetch_add(1);
        continue;
      }
      if (response.value().GetBool("ok", false)) {
        const JsonValue* result = response.value().Find("result");
        if (result != nullptr && result->GetBool("partial", false)) {
          tally->partial.fetch_add(1);
        } else {
          tally->ok.fetch_add(1);
        }
        continue;
      }
      const JsonValue* error = response.value().Find("error");
      const std::string code =
          error != nullptr ? error->GetString("code", "") : "";
      if (code == "OVERLOADED") {
        tally->overloaded.fetch_add(1);
        const double retry_ms =
            error->GetNumber("retry_after_ms", 50.0);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::int64_t>(static_cast<std::int64_t>(retry_ms), 250)));
      } else if (code == "RESOURCE_EXHAUSTED") {
        tally->resource_exhausted.fetch_add(1);
      } else {
        tally->errors.fetch_add(1);
      }
    }
  }
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::int64_t seconds = 10;
  std::int64_t concurrency = 4;
  std::int64_t n = 4096;
  std::int64_t period = 25;
  std::int64_t sigma = 4;
  std::int64_t seed = 1;
  FlagSet flags("periodica_load");
  flags.AddString("socket", &socket_path, "daemon Unix socket path");
  flags.AddInt64("seconds", &seconds, "wall-clock run length");
  flags.AddInt64("concurrency", &concurrency, "closed-loop client threads");
  flags.AddInt64("length", &n, "series length per mine request");
  flags.AddInt64("period", &period, "planted period");
  flags.AddInt64("sigma", &sigma, "alphabet size (<= 26)");
  flags.AddInt64("seed", &seed, "base RNG seed");
  flags.SetEpilog(
      "Exit codes: 0 = every response structured (overload rejections are\n"
      "normal); 1 = malformed/unexpected responses or usage error.");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "periodica_load: %s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (socket_path.empty() || concurrency < 1 || seconds < 1 || sigma < 1 ||
      sigma > 26 || n < 2 || period < 1) {
    std::fprintf(stderr, "periodica_load: bad arguments\n%s",
                 flags.Usage().c_str());
    return 1;
  }

  const auto stop_at =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  Tally tally;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(concurrency));
  for (std::int64_t i = 0; i < concurrency; ++i) {
    workers.emplace_back(Worker, socket_path, static_cast<std::size_t>(n),
                         static_cast<std::size_t>(period),
                         static_cast<std::size_t>(sigma), stop_at,
                         static_cast<std::uint64_t>(seed + i), &tally);
  }
  for (std::thread& worker : workers) worker.join();

  JsonValue::Object summary;
  summary["sent"] = tally.sent.load();
  summary["ok"] = tally.ok.load();
  summary["partial"] = tally.partial.load();
  summary["overloaded"] = tally.overloaded.load();
  summary["resource_exhausted"] = tally.resource_exhausted.load();
  summary["errors"] = tally.errors.load();
  summary["connect_errors"] = tally.connect_errors.load();
  std::printf("%s\n", JsonValue(std::move(summary)).Dump().c_str());
  return tally.errors.load() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace periodica::tools

int main(int argc, char** argv) { return periodica::tools::Main(argc, argv); }
