// periodica_load: closed-loop load generator for periodicad, used by
// tools/soak.sh and by hand when sizing a deployment (docs/SERVING.md).
//
// Two modes:
//
//  * mine mode (default): each of --concurrency worker threads loops for
//    --seconds: connect, send a `mine` request for a synthetic periodic
//    series, read the response, tally the outcome. OVERLOADED responses
//    are part of normal operation — the worker honors error.retry_after_ms
//    (capped) and tries again; connection errors are retried with a short
//    backoff, since the soak kills and drains the daemon mid-run on
//    purpose.
//
//  * session mode (--sessions N, optionally --tenants K): exercises the
//    multi-tenant stream hub. The N sessions are spread over K tenants and
//    the worker threads; each worker opens its slice, feeds every session
//    --feed_rounds rounds of symbols, runs stream_detect on a sample, and
//    closes everything. Per-request latency is recorded and reported as
//    p50/p90/p99/max; QUOTA_EXCEEDED rejections are retried after the
//    server's retry_after_ms hint and tallied, and the final report folds
//    in the daemon's own eviction/thaw counters (from `stats`) so a
//    budgeted run shows the eviction machinery working.
//
// Prints a one-line JSON summary to stdout, e.g.
//   {"errors":0,"ok":412,"overloaded":118,"partial":3,
//    "resource_exhausted":0,"sent":533}
// (session mode adds "latency_ms", "evictions", "thaws",
// "quota_exceeded", ...) and exits 0 when every response was structured
// (ok / overloaded / resource-exhausted / quota-exceeded / partial), 1
// when any malformed or unexpected response was seen. Connection failures
// are tallied separately ("connect_errors") and do not fail the run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "periodica/util/flags.h"
#include "periodica/util/json.h"
#include "periodica/util/sync.h"
#include "unix_socket.h"

namespace periodica::tools {
namespace {

using util::JsonValue;

/// Per-outcome request counters shared by the load workers.
///
/// Ordering: relaxed (the fetch_add default is stronger than needed, but
/// these are pure tallies) — each counter is independent, nothing is
/// published through them, and the final report reads them after join(),
/// which already orders every worker's writes before the read.
struct Tally {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> partial{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> resource_exhausted{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> connect_errors{0};
};

/// A periodic series of `n` symbols with period `period` over letters
/// a..a+sigma-1, plus ~10% replacement noise so mining does real work.
std::string MakeSeries(std::mt19937_64& rng, std::size_t n,
                       std::size_t period, std::size_t sigma) {
  std::string pattern;
  pattern.reserve(period);
  std::uniform_int_distribution<int> symbol(0, static_cast<int>(sigma) - 1);
  for (std::size_t i = 0; i < period; ++i) {
    pattern.push_back(static_cast<char>('a' + symbol(rng)));
  }
  std::string series;
  series.reserve(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    char c = pattern[i % period];
    if (unit(rng) < 0.1) c = static_cast<char>('a' + symbol(rng));
    series.push_back(c);
  }
  return series;
}

void Worker(const std::string& socket_path, const std::string& tcp_spec,
            std::size_t n, std::size_t period, std::size_t sigma,
            std::chrono::steady_clock::time_point stop_at, std::uint64_t seed,
            Tally* tally) {
  std::mt19937_64 rng(seed);
  while (std::chrono::steady_clock::now() < stop_at) {
    Result<FdHandle> fd = DialServer(socket_path, tcp_spec);
    if (!fd.ok()) {
      tally->connect_errors.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    LineReader reader(fd.value().get());
    // Reuse one connection for a few requests, as a real client would.
    for (int burst = 0; burst < 8; ++burst) {
      if (std::chrono::steady_clock::now() >= stop_at) break;
      JsonValue::Object params;
      params["series"] = MakeSeries(rng, n, period, sigma);
      params["threshold"] = 0.6;
      params["max_entries_returned"] = std::size_t{5};
      JsonValue::Object request;
      request["id"] = std::size_t{1};
      request["method"] = "mine";
      request["params"] = JsonValue(std::move(params));
      tally->sent.fetch_add(1);
      if (!SendLine(fd.value().get(), JsonValue(std::move(request)).Dump())
               .ok()) {
        tally->connect_errors.fetch_add(1);
        break;
      }
      const Result<std::string> line = reader.Next();
      if (!line.ok()) {
        // Mid-drain the daemon closes connections; that's expected.
        tally->connect_errors.fetch_add(1);
        break;
      }
      const Result<JsonValue> response = JsonValue::Parse(line.value());
      if (!response.ok()) {
        tally->errors.fetch_add(1);
        continue;
      }
      if (response.value().GetBool("ok", false)) {
        const JsonValue* result = response.value().Find("result");
        if (result != nullptr && result->GetBool("partial", false)) {
          tally->partial.fetch_add(1);
        } else {
          tally->ok.fetch_add(1);
        }
        continue;
      }
      const JsonValue* error = response.value().Find("error");
      const std::string code =
          error != nullptr ? error->GetString("code", "") : "";
      if (code == "OVERLOADED") {
        tally->overloaded.fetch_add(1);
        const double retry_ms =
            error->GetNumber("retry_after_ms", 50.0);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::int64_t>(static_cast<std::int64_t>(retry_ms), 250)));
      } else if (code == "RESOURCE_EXHAUSTED") {
        tally->resource_exhausted.fetch_add(1);
      } else {
        tally->errors.fetch_add(1);
      }
    }
  }
}

// --- Session mode ----------------------------------------------------------

/// Counters for the stream-hub workload, same relaxed-tally discipline as
/// Tally.
///
/// Ordering: relaxed — independent tallies, read only after join().
struct SessionTally {
  std::atomic<std::uint64_t> opens{0};
  std::atomic<std::uint64_t> feeds{0};
  std::atomic<std::uint64_t> detects{0};
  std::atomic<std::uint64_t> closes{0};
  std::atomic<std::uint64_t> quota_exceeded{0};  ///< rejections retried
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> connect_errors{0};
};

/// Latency samples merged from all workers after join().
struct LatencyPool {
  util::Mutex mutex;
  std::vector<double> samples_ms PERIODICA_GUARDED_BY(mutex);

  void Merge(std::vector<double>&& local) {
    util::MutexLock lock(&mutex);
    samples_ms.insert(samples_ms.end(), local.begin(), local.end());
  }
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

/// Sends one request and reads its response, timing the round trip.
/// QUOTA_EXCEEDED and OVERLOADED rejections are retried (up to `attempts`)
/// after the server's retry_after_ms hint; the returned JsonValue is the
/// final response (or nullopt on a connection-level failure).
std::string ErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  return error != nullptr ? error->GetString("code", "") : "";
}

std::optional<JsonValue> TimedRpc(int fd, LineReader* reader,
                                  const JsonValue& request,
                                  SessionTally* tally,
                                  std::vector<double>* latencies,
                                  int attempts = 120) {
  const std::string wire = request.Dump();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    if (!SendLine(fd, wire).ok()) {
      tally->connect_errors.fetch_add(1);
      return std::nullopt;
    }
    const Result<std::string> line = reader->Next();
    if (!line.ok()) {
      tally->connect_errors.fetch_add(1);
      return std::nullopt;
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    latencies->push_back(elapsed.count());
    Result<JsonValue> response = JsonValue::Parse(line.value());
    if (!response.ok()) {
      tally->errors.fetch_add(1);
      return std::nullopt;
    }
    if (response.value().GetBool("ok", false)) return response.value();
    const std::string code = ErrorCode(response.value());
    if (code == "QUOTA_EXCEEDED" || code == "OVERLOADED") {
      (code == "QUOTA_EXCEEDED" ? tally->quota_exceeded : tally->overloaded)
          .fetch_add(1);
      const JsonValue* error = response.value().Find("error");
      const double retry_ms =
          error != nullptr ? error->GetNumber("retry_after_ms", 50.0) : 50.0;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::int64_t>(static_cast<std::int64_t>(retry_ms), 250)));
      continue;
    }
    return response.value();  // other errors: caller decides
  }
  tally->errors.fetch_add(1);  // never admitted within the retry budget
  return std::nullopt;
}

struct SessionConfig {
  std::string socket_path;
  std::string tcp_spec;
  std::size_t sessions = 0;
  std::size_t tenants = 1;
  std::size_t concurrency = 4;
  std::size_t max_period = 32;
  std::size_t sigma = 4;
  std::size_t feed_rounds = 2;
  std::size_t feed_chunk = 64;
  std::size_t detect_every = 64;  ///< run stream_detect on every k-th session
  /// Sleep between the detect and close phases, so every worker's slice is
  /// open simultaneously for at least this long. On a fast multicore host a
  /// worker could otherwise open-and-close its slice before the next worker
  /// opens, and a soak asserting "the session budget forced evictions"
  /// would never see concurrent pressure (tools/soak.sh stage 2).
  std::int64_t hold_open_ms = 0;
  std::uint64_t seed = 1;
};

JsonValue SessionRequest(const std::string& method, const std::string& tenant,
                         const std::string& session, JsonValue::Object extra) {
  extra["tenant"] = tenant;
  extra["session"] = session;
  JsonValue::Object request;
  request["method"] = method;
  request["params"] = JsonValue(std::move(extra));
  return JsonValue(std::move(request));
}

/// Runs one worker's slice [begin, end) of the session space through the
/// open -> feed* -> detect(sample) -> close lifecycle on one connection
/// (reconnecting on failure). `hold_arrivals` counts workers that reached
/// the pre-close hold point (or bailed out early); with --hold_open_ms the
/// hold doubles as a rendezvous on it, so every worker's slice is open
/// simultaneously even when the threads serialize on a 1-core host.
void SessionWorker(const SessionConfig& config, std::size_t begin,
                   std::size_t end, std::size_t total_workers,
                   // Ordering: plain arrival counter (default seq_cst); the
                   // rendezvous only polls the count, no acquire/release
                   // pairing with other state.
                   std::atomic<std::size_t>* hold_arrivals,
                   SessionTally* tally, LatencyPool* pool) {
  std::mt19937_64 rng(config.seed + begin);
  std::vector<double> latencies;
  latencies.reserve((end - begin) * (config.feed_rounds + 2));
  Result<FdHandle> fd = DialServer(config.socket_path, config.tcp_spec);
  auto reconnect = [&]() -> bool {
    for (int attempt = 0; attempt < 20; ++attempt) {
      fd = DialServer(config.socket_path, config.tcp_spec);
      if (fd.ok()) return true;
      tally->connect_errors.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  };
  if (!fd.ok() && !reconnect()) {
    hold_arrivals->fetch_add(1);  // never strand workers at the rendezvous
    pool->Merge(std::move(latencies));
    return;
  }
  auto reader = std::make_unique<LineReader>(fd.value().get());
  // Issues the request, transparently reconnecting once on a dropped
  // connection (the soak injects connection-killing faults on purpose).
  // `rpc_resent` flags that the returned response came from a resend: the
  // first attempt's connection died after the request may already have been
  // applied, so the caller must treat duplicate-state errors as success
  // (at-least-once delivery ambiguity).
  bool rpc_resent = false;
  auto rpc = [&](const JsonValue& request) -> std::optional<JsonValue> {
    rpc_resent = false;
    std::optional<JsonValue> response =
        TimedRpc(fd.value().get(), reader.get(), request, tally, &latencies);
    if (!response.has_value()) {
      if (!reconnect()) return std::nullopt;
      reader = std::make_unique<LineReader>(fd.value().get());
      rpc_resent = true;
      response =
          TimedRpc(fd.value().get(), reader.get(), request, tally, &latencies);
    }
    return response;
  };
  auto tenant_of = [&](std::size_t i) {
    return "t" + std::to_string(i % config.tenants);
  };
  auto session_of = [&](std::size_t i) {
    return "load-" + std::to_string(i);
  };

  for (std::size_t i = begin; i < end; ++i) {
    JsonValue::Object params;
    params["max_period"] = config.max_period;
    params["alphabet_size"] = config.sigma;
    const std::optional<JsonValue> response = rpc(SessionRequest(
        "stream_open", tenant_of(i), session_of(i), std::move(params)));
    if (response.has_value() && response->GetBool("ok", false)) {
      tally->opens.fetch_add(1);
    } else if (response.has_value()) {
      // A duplicate-session rejection on a resend means the first attempt
      // landed before its connection was killed: the session is open.
      if (rpc_resent && ErrorCode(*response) == "INVALID_ARGUMENT") {
        tally->opens.fetch_add(1);
      } else {
        tally->errors.fetch_add(1);
      }
    }
  }
  for (std::size_t round = 0; round < config.feed_rounds; ++round) {
    for (std::size_t i = begin; i < end; ++i) {
      JsonValue::Object params;
      params["symbols"] =
          MakeSeries(rng, config.feed_chunk, config.max_period / 2,
                     config.sigma);
      const std::optional<JsonValue> response = rpc(SessionRequest(
          "stream_feed", tenant_of(i), session_of(i), std::move(params)));
      if (response.has_value() && response->GetBool("ok", false)) {
        tally->feeds.fetch_add(1);
      } else if (response.has_value()) {
        tally->errors.fetch_add(1);
      }
    }
  }
  for (std::size_t i = begin; i < end; i += config.detect_every) {
    JsonValue::Object params;
    params["threshold"] = 0.4;
    const std::optional<JsonValue> response = rpc(SessionRequest(
        "stream_detect", tenant_of(i), session_of(i), std::move(params)));
    if (response.has_value() && response->GetBool("ok", false)) {
      tally->detects.fetch_add(1);
    } else if (response.has_value()) {
      tally->errors.fetch_add(1);
    }
  }
  hold_arrivals->fetch_add(1);
  if (config.hold_open_ms > 0) {
    // Rendezvous (bounded): wait until every worker's slice is open before
    // holding, so the session budget sees all slices at once. Without this
    // a serialized schedule (1-core CI host) closes each slice before the
    // next opens and an eviction-asserting soak never builds pressure.
    const auto barrier_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            std::max<std::int64_t>(config.hold_open_ms * 40, 10000));
    while (hold_arrivals->load() < total_workers &&
           std::chrono::steady_clock::now() < barrier_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(config.hold_open_ms));
  }
  for (std::size_t i = begin; i < end; ++i) {
    const std::optional<JsonValue> response = rpc(SessionRequest(
        "stream_close", tenant_of(i), session_of(i), JsonValue::Object{}));
    if (response.has_value() && response->GetBool("ok", false)) {
      tally->closes.fetch_add(1);
    } else if (response.has_value()) {
      // NOT_FOUND on a resend means the first close was applied before its
      // connection was killed: the session is gone, which is the goal.
      if (rpc_resent && ErrorCode(*response) == "NOT_FOUND") {
        tally->closes.fetch_add(1);
      } else {
        tally->errors.fetch_add(1);
      }
    }
  }
  pool->Merge(std::move(latencies));
}

int RunSessionMode(const SessionConfig& config) {
  SessionTally tally;
  LatencyPool pool;
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config.concurrency, config.sessions));
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t per_worker = (config.sessions + workers - 1) / workers;
  std::vector<std::pair<std::size_t, std::size_t>> slices;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * per_worker;
    const std::size_t end = std::min(config.sessions, begin + per_worker);
    if (begin >= end) break;
    slices.emplace_back(begin, end);
  }
  /// Ordering: relaxed-equivalent (default seq_cst is fine here) — the
  /// rendezvous only needs eventual visibility of the arrival count; the
  /// close phase does not read other workers' session state.
  std::atomic<std::size_t> hold_arrivals{0};
  for (const auto& [begin, end] : slices) {
    threads.emplace_back(SessionWorker, std::cref(config), begin, end,
                         slices.size(), &hold_arrivals, &tally, &pool);
  }
  for (std::thread& thread : threads) thread.join();

  // One last stats call folds the daemon's own eviction/thaw counters into
  // the report (best-effort: the daemon may already be gone under soak).
  std::uint64_t evictions = 0;
  std::uint64_t thaws = 0;
  std::uint64_t server_quota_rejections = 0;
  bool folded = false;
  std::string fold_failure;
  // Retried on a fresh connection: a still-armed single-fire fault (the
  // soak arms them by hit count, and a quiet run may not reach the Nth
  // accept/read/write until now) can eat exactly this exchange, and a
  // dropped stats call must not read as "the budget never bit" to a soak
  // gating on these counters.
  for (int attempt = 0; attempt < 5 && !folded; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    Result<FdHandle> fd = DialServer(config.socket_path, config.tcp_spec);
    if (!fd.ok()) {
      fold_failure = "stats dial failed: " + fd.status().ToString();
      continue;
    }
    LineReader reader(fd.value().get());
    JsonValue::Object request;
    request["method"] = "stats";
    if (const Status sent =
            SendLine(fd.value().get(), JsonValue(std::move(request)).Dump());
        !sent.ok()) {
      fold_failure = "stats send failed: " + sent.ToString();
      continue;
    }
    const Result<std::string> line = reader.Next();
    if (!line.ok()) {
      fold_failure = "no stats response: " + line.status().ToString();
      continue;
    }
    Result<JsonValue> response = JsonValue::Parse(line.value());
    if (!response.ok()) {
      fold_failure = "unparseable stats response";
      continue;
    }
    const JsonValue* result = response.value().Find("result");
    const JsonValue* table =
        result == nullptr ? nullptr : result->Find("session_table");
    if (table == nullptr) {
      fold_failure = "stats response lacks result.session_table";
      continue;
    }
    evictions = static_cast<std::uint64_t>(table->GetNumber("evictions", 0));
    thaws = static_cast<std::uint64_t>(table->GetNumber("thaws", 0));
    server_quota_rejections =
        static_cast<std::uint64_t>(table->GetNumber("quota_rejections", 0));
    folded = true;
  }
  if (!folded) {
    std::fprintf(stderr, "periodica_load: server stats not folded (%s)\n",
                 fold_failure.c_str());
  }

  std::vector<double> sorted;
  {
    util::MutexLock lock(&pool.mutex);
    sorted = pool.samples_ms;
  }
  std::sort(sorted.begin(), sorted.end());
  JsonValue::Object latency;
  latency["p50"] = Percentile(sorted, 0.50);
  latency["p90"] = Percentile(sorted, 0.90);
  latency["p99"] = Percentile(sorted, 0.99);
  latency["max"] = sorted.empty() ? 0.0 : sorted.back();
  latency["samples"] = sorted.size();

  JsonValue::Object summary;
  summary["sessions"] = config.sessions;
  summary["tenants"] = config.tenants;
  summary["opens"] = tally.opens.load();
  summary["feeds"] = tally.feeds.load();
  summary["detects"] = tally.detects.load();
  summary["closes"] = tally.closes.load();
  summary["quota_exceeded"] = tally.quota_exceeded.load();
  summary["overloaded"] = tally.overloaded.load();
  summary["errors"] = tally.errors.load();
  summary["connect_errors"] = tally.connect_errors.load();
  summary["evictions"] = evictions;
  summary["thaws"] = thaws;
  summary["server_quota_rejections"] = server_quota_rejections;
  summary["latency_ms"] = JsonValue(std::move(latency));
  std::printf("%s\n", JsonValue(std::move(summary)).Dump().c_str());
  return tally.errors.load() == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_spec;
  std::int64_t hold_open_ms = 0;
  std::int64_t seconds = 10;
  std::int64_t concurrency = 4;
  std::int64_t n = 4096;
  std::int64_t period = 25;
  std::int64_t sigma = 4;
  std::int64_t seed = 1;
  std::int64_t sessions = 0;
  std::int64_t tenants = 1;
  std::int64_t feed_rounds = 2;
  std::int64_t feed_chunk = 64;
  std::int64_t detect_every = 64;
  std::int64_t max_period = 32;
  FlagSet flags("periodica_load");
  flags.AddString("socket", &socket_path, "daemon Unix socket path");
  flags.AddString("tcp", &tcp_spec,
                  "daemon/router TCP endpoint as host:port (overrides "
                  "--socket)");
  flags.AddInt64("seconds", &seconds, "wall-clock run length");
  flags.AddInt64("concurrency", &concurrency, "closed-loop client threads");
  flags.AddInt64("length", &n, "series length per mine request");
  flags.AddInt64("period", &period, "planted period");
  flags.AddInt64("sigma", &sigma, "alphabet size (<= 26)");
  flags.AddInt64("seed", &seed, "base RNG seed");
  flags.AddInt64("sessions", &sessions,
                 "session mode: open/feed/detect/close this many streaming "
                 "sessions instead of mining (0 = mine mode)");
  flags.AddInt64("tenants", &tenants,
                 "session mode: spread sessions over this many tenants");
  flags.AddInt64("feed_rounds", &feed_rounds,
                 "session mode: stream_feed rounds per session");
  flags.AddInt64("feed_chunk", &feed_chunk,
                 "session mode: symbols per stream_feed");
  flags.AddInt64("detect_every", &detect_every,
                 "session mode: stream_detect every k-th session");
  flags.AddInt64("max_period", &max_period,
                 "session mode: max_period for opened sessions");
  flags.AddInt64("hold_open_ms", &hold_open_ms,
                 "session mode: keep each worker's slice open this long "
                 "between detect and close, so concurrent slices overlap "
                 "and session budgets actually bite (soak eviction gate)");
  flags.SetEpilog(
      "Exit codes: 0 = every response structured (overload and quota\n"
      "rejections are normal); 1 = malformed/unexpected responses or usage\n"
      "error. Session mode reports per-request latency percentiles and the\n"
      "daemon's eviction/thaw counters.");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "periodica_load: %s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if ((socket_path.empty() && tcp_spec.empty()) || concurrency < 1 ||
      seconds < 1 || sigma < 1 || sigma > 26 || n < 2 || period < 1 ||
      sessions < 0 || tenants < 1 || feed_rounds < 0 || feed_chunk < 1 ||
      detect_every < 1 || max_period < 2 || hold_open_ms < 0) {
    std::fprintf(stderr, "periodica_load: bad arguments\n%s",
                 flags.Usage().c_str());
    return 1;
  }
  if (sessions > 0) {
    SessionConfig config;
    config.socket_path = socket_path;
    config.tcp_spec = tcp_spec;
    config.hold_open_ms = hold_open_ms;
    config.sessions = static_cast<std::size_t>(sessions);
    config.tenants = static_cast<std::size_t>(tenants);
    config.concurrency = static_cast<std::size_t>(concurrency);
    config.max_period = static_cast<std::size_t>(max_period);
    config.sigma = static_cast<std::size_t>(sigma);
    config.feed_rounds = static_cast<std::size_t>(feed_rounds);
    config.feed_chunk = static_cast<std::size_t>(feed_chunk);
    config.detect_every = static_cast<std::size_t>(detect_every);
    config.seed = static_cast<std::uint64_t>(seed);
    return RunSessionMode(config);
  }

  const auto stop_at =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  Tally tally;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(concurrency));
  for (std::int64_t i = 0; i < concurrency; ++i) {
    workers.emplace_back(Worker, socket_path, tcp_spec,
                         static_cast<std::size_t>(n),
                         static_cast<std::size_t>(period),
                         static_cast<std::size_t>(sigma), stop_at,
                         static_cast<std::uint64_t>(seed + i), &tally);
  }
  for (std::thread& worker : workers) worker.join();

  JsonValue::Object summary;
  summary["sent"] = tally.sent.load();
  summary["ok"] = tally.ok.load();
  summary["partial"] = tally.partial.load();
  summary["overloaded"] = tally.overloaded.load();
  summary["resource_exhausted"] = tally.resource_exhausted.load();
  summary["errors"] = tally.errors.load();
  summary["connect_errors"] = tally.connect_errors.load();
  std::printf("%s\n", JsonValue(std::move(summary)).Dump().c_str());
  return tally.errors.load() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace periodica::tools

int main(int argc, char** argv) { return periodica::tools::Main(argc, argv); }
