// periodica_router: fault-tolerant front end for a fleet of periodicad
// shards (docs/SERVING.md, "Multi-node serving"). Clients connect to the
// router exactly as they would to a single daemon — same newline-delimited
// JSON protocol, over a Unix socket (--listen_socket) and/or TCP
// (--listen_port) — and the router:
//
//   * consistent-hashes each (tenant, session) routing key onto the ring of
//     healthy shards (serve::ShardMap), so any router replica computes the
//     same placement and a shard flap only remaps the keys it owned;
//   * supervises every shard over a dedicated heartbeat connection: a ping
//     that misses its deadline (or a dropped connection) marks the shard
//     down within one heartbeat interval, and reconnect probes back off
//     exponentially with jitter (tools/retry_backoff.h) until the shard
//     answers again;
//   * migrates live sessions: when the owning shard dies mid-stream, the
//     key re-routes to the next healthy shard and a NOT_FOUND from the new
//     owner is transparently repaired with an internal
//     stream_open{resume:true} — the new shard thaws the session from the
//     shared checkpoint directory and the original request is resent once.
//     With the shards running --checkpoint_each_feed (ack-after-persist)
//     and clients sending explicit feed offsets, the migrated stream's
//     detector output is byte-identical to a never-migrated run
//     (tools/soak.sh stage 4 asserts exactly that);
//   * propagates structured backpressure: shard OVERLOADED/QUOTA_EXCEEDED
//     responses are relayed verbatim (retry_after_ms intact), and when no
//     healthy shard exists the router answers its own OVERLOADED with a
//     retry hint instead of hanging or dropping the connection.
//
// The router itself holds no session state — only the placement ring, a
// sticky migration map, and per-connection buffers — so it restarts in
// milliseconds and two replicas can front the same fleet.
//
// Single-threaded: one util::EventLoop multiplexes client connections,
// per-(client, shard) upstream connections and heartbeat timers. Every
// member below is loop-confined unless stated otherwise.

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "periodica/serve/shard_map.h"
#include "periodica/store/kv_store.h"
#include "periodica/util/event_loop.h"
#include "periodica/util/fault_injector.h"
#include "periodica/util/flags.h"
#include "periodica/util/json.h"
#include "periodica/util/rng.h"
#include "periodica/util/status.h"
#include "periodica/util/tcp.h"
#include "retry_backoff.h"
#include "unix_socket.h"

namespace periodica::tools {
namespace {

using util::EventLoop;
using util::JsonValue;

// --- Configuration ---------------------------------------------------------

struct RouterConfig {
  std::string listen_socket;           // Unix socket for clients ("" = off)
  std::string listen_host = "127.0.0.1";
  std::int64_t listen_port = -1;       // TCP for clients (-1 = off, 0 = any)
  std::string shards;                  // "name=host:port,..." (required)
  std::int64_t virtual_nodes = 64;
  std::int64_t heartbeat_ms = 300;     // ping interval per shard
  std::int64_t heartbeat_timeout_ms = 0;  // pong deadline (0 = 2x interval)
  std::int64_t reconnect_base_ms = 100;   // backoff base for down shards
  std::int64_t reconnect_max_ms = 2000;   // backoff cap (pre-jitter)
  std::int64_t route_retries = 3;      // re-route attempts per request
  std::int64_t retry_after_ms = 250;   // hint in router-origin OVERLOADED
  std::int64_t max_request_bytes = 64 << 20;
  std::int64_t pin_ttl_s = 3600;       // idle migration-pin expiry (0 = never)
  std::string faults;                  // "site:nth[:repeat],..." like the daemon
};

struct ShardSpec {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "--shards name=host:port,name=host:port". Every shard needs a
/// unique non-empty name (it is the ring identity and the stats key).
Status ParseShards(const std::string& spec, std::vector<ShardSpec>* out) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("--shards item '" + item +
                                     "' is not name=host:port");
    }
    ShardSpec shard;
    shard.name = item.substr(0, eq);
    PERIODICA_ASSIGN_OR_RETURN(const util::TcpEndpoint endpoint,
                               util::ParseHostPort(item.substr(eq + 1)));
    shard.host = endpoint.host;
    shard.port = endpoint.port;
    for (const ShardSpec& seen : *out) {
      if (seen.name == shard.name) {
        return Status::InvalidArgument("--shards name '" + shard.name +
                                       "' appears twice");
      }
    }
    out->push_back(std::move(shard));
  }
  if (out->empty()) {
    return Status::InvalidArgument("--shards requires at least one shard");
  }
  return Status::OK();
}

// --- Shutdown plumbing (same shape as periodicad) --------------------------

/// Ordering: relaxed — the signal handler's write is observed via the wake
/// pipe's readability, which the loop handles on its own thread.
std::atomic<bool> g_shutdown{false};
int g_wake_pipe[2] = {-1, -1};

void HandleShutdownSignal(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t ignored = ::write(g_wake_pipe[1], &byte, 1);
}

// --- JSON response helpers (wire format shared with periodicad) ------------

JsonValue ErrorResponse(const std::string& code, const std::string& message) {
  JsonValue::Object error;
  error["code"] = code;
  error["message"] = message;
  JsonValue::Object response;
  response["ok"] = false;
  response["error"] = JsonValue(std::move(error));
  return JsonValue(std::move(response));
}

JsonValue OkResponse(JsonValue::Object result) {
  JsonValue::Object response;
  response["ok"] = true;
  response["result"] = JsonValue(std::move(result));
  return JsonValue(std::move(response));
}

/// The tenant a request acts for (mirrors the daemon's defaulting so the
/// routing key and the shard's checkpoint key always agree).
std::string RequestTenant(const JsonValue& params) {
  std::string tenant = params.GetString("tenant", "default");
  return tenant.empty() ? "default" : tenant;
}

// --- Router ----------------------------------------------------------------

class Router {
 public:
  Router(RouterConfig config, std::vector<ShardSpec> specs)
      : config_(std::move(config)),
        specs_(std::move(specs)),
        ring_(static_cast<std::size_t>(config_.virtual_nodes)),
        rng_(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(::getpid())) {}

  Status Run();

 private:
  // One proxied connection to a shard, owned by the client connection that
  // opened it (so per-connection serial semantics survive the hop: a
  // client's requests to one shard flow down one upstream, in order).
  struct Upstream {
    std::string shard;
    FdHandle fd;
    LineBuffer in;
    std::string out;
    std::size_t out_offset = 0;
    bool connecting = false;
  };

  // The request a client connection currently has in flight, with the
  // routing state needed to re-dispatch it when its shard dies under it.
  struct InFlight {
    bool active = false;
    std::string line;        // verbatim request (relayed bytes, not re-dumped)
    std::string method;
    std::string tenant;
    std::string session;
    std::string route_key;
    JsonValue id;
    bool has_id = false;
    int attempts = 0;        // dispatches so far (re-routes count)
    bool resume_tried = false;   // one migration repair per request
    // The repair chain replaces the client's request with internal ones:
    // kDiscard drops a stale duplicate copy (a zombie left by a health
    // flap) before kResume thaws the authoritative checkpoint; then the
    // original request is resent. kNone = the client's own request is out.
    enum class Repair { kNone, kDiscard, kResume };
    Repair repair = Repair::kNone;
    std::string target;      // shard currently serving it
  };

  struct ClientConn {
    ClientConn(FdHandle fd_in, std::size_t max_line, bool tcp_in)
        : fd(std::move(fd_in)), in(max_line), tcp(tcp_in) {}
    FdHandle fd;
    LineBuffer in;
    std::string out;
    std::size_t out_offset = 0;
    bool busy = false;
    bool saw_eof = false;
    bool closed = false;
    const bool tcp;
    InFlight flight;
    std::map<std::string, std::unique_ptr<Upstream>> upstreams;  // by shard
  };

  // Health supervision for one shard: a dedicated heartbeat connection plus
  // the timers that drive pings, pong deadlines and reconnect backoff.
  struct Shard {
    ShardSpec spec;
    bool up = false;
    FdHandle hb_fd;
    LineBuffer hb_in;
    std::string hb_out;
    std::size_t hb_out_offset = 0;
    bool hb_connecting = false;
    bool awaiting_pong = false;
    std::uint64_t ping_timer = 0;      // next scheduled ping (0 = none)
    std::uint64_t deadline_timer = 0;  // pong deadline (0 = none)
    bool reconnect_scheduled = false;
    std::int64_t backoff_attempt = 0;
    // Stats.
    std::uint64_t marked_down = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t pings = 0;
    std::uint64_t forwarded = 0;
  };

  // Client side.
  void OnAcceptable(bool tcp);
  void RegisterClient(FdHandle fd, bool tcp);
  void OnClientReadable(const std::shared_ptr<ClientConn>& conn);
  void OnClientWritable(const std::shared_ptr<ClientConn>& conn);
  void ProcessNextLine(const std::shared_ptr<ClientConn>& conn);
  void HandleRequestLine(const std::shared_ptr<ClientConn>& conn,
                         const std::string& line);
  void EnqueueResponse(const std::shared_ptr<ClientConn>& conn,
                       JsonValue response);
  void RelayVerbatim(const std::shared_ptr<ClientConn>& conn,
                     const std::string& line);
  void FlushOut(const std::shared_ptr<ClientConn>& conn);
  void CloseClient(const std::shared_ptr<ClientConn>& conn);

  // Routing.
  void DispatchInFlight(const std::shared_ptr<ClientConn>& conn);
  void FinishWithLocalResponse(const std::shared_ptr<ClientConn>& conn,
                               JsonValue response);
  JsonValue RouterOverloaded(const std::string& message) const;
  JsonValue HandleStats() const;

  // Upstreams.
  Upstream* GetOrConnectUpstream(const std::shared_ptr<ClientConn>& conn,
                                 const std::string& shard_name);
  void SendOnUpstream(const std::shared_ptr<ClientConn>& conn,
                      Upstream* upstream, const std::string& line);
  void OnUpstreamReadable(const std::shared_ptr<ClientConn>& conn,
                          const std::string& shard_name);
  void OnUpstreamWritable(const std::shared_ptr<ClientConn>& conn,
                          const std::string& shard_name);
  void FlushUpstream(const std::shared_ptr<ClientConn>& conn,
                     Upstream* upstream);
  void HandleUpstreamResponse(const std::shared_ptr<ClientConn>& conn,
                              const std::string& shard_name,
                              const std::string& line);
  void DropUpstream(const std::shared_ptr<ClientConn>& conn,
                    const std::string& shard_name);

  // Shard supervision.
  Shard* FindShard(const std::string& name);
  void StartHeartbeatConnect(const std::string& name);
  void OnHeartbeatReadable(const std::string& name);
  void OnHeartbeatWritable(const std::string& name);
  void SendPing(const std::string& name);
  void FlushHeartbeat(Shard* shard);
  void OnPingDeadline(const std::string& name);
  void MarkShardUp(const std::string& name);
  void MarkShardDown(const std::string& name, const std::string& reason);
  void CloseHeartbeat(Shard* shard);
  void ScheduleReconnect(Shard* shard);

  // Zombie hygiene (see the Pin struct).
  /// Queues a fire-and-forget control request on the shard's heartbeat
  /// connection. Replies are drained by the heartbeat reader (any complete
  /// response settles an outstanding ping; extras are ignored), so control
  /// traffic cannot desynchronise a client connection's serial protocol.
  void QueueShardControl(Shard* shard, const std::string& line);
  /// Best-effort stream_discard of (tenant, session) on every up shard
  /// except `keep`: after a repair pins the session to `keep`, any other
  /// live copy is a stale duplicate that would shadow NOT_FOUND repair and
  /// serve wrong detects.
  void DiscardElsewhere(const std::string& keep, const std::string& tenant,
                        const std::string& session);
  [[nodiscard]] static std::string DiscardRequestLine(
      const std::string& tenant, const std::string& session);
  /// Reaps migration pins idle for --pin_ttl_s (abandoned sessions), with a
  /// best-effort stream_discard of the live copy left on the pinned shard,
  /// then re-arms itself. No-op once shutdown begins.
  void SweepPins();
  void SchedulePinSweep();

  void OnWakePipe();
  void BeginShutdown();

  const RouterConfig config_;
  const std::vector<ShardSpec> specs_;

  /// All below are loop-confined (single event-loop thread; see the
  /// EventLoop confinement discipline).
  /// lint: unguarded(loop_): loop-confined
  std::unique_ptr<EventLoop> loop_;
  /// lint: unguarded(ring_): loop-confined
  serve::ShardMap ring_;
  /// lint: unguarded(rng_): loop-confined (backoff jitter)
  Rng rng_;
  /// lint: unguarded(shards_): loop-confined
  std::map<std::string, Shard> shards_;
  /// lint: unguarded(connections_): loop-confined
  std::map<int, std::shared_ptr<ClientConn>> connections_;
  /// Sticky placement overrides: once a session migrates — or is placed on
  /// a fallback shard because its primary was down — its key pins to that
  /// shard until stream_close, so a flapping original owner cannot pull
  /// the stream back onto its stale state. The tenant/session pair is kept
  /// so stale duplicate copies can be purged with stream_discard. Pins for
  /// sessions their clients abandoned (no stream_close ever routed here)
  /// are reaped after --pin_ttl_s idle seconds by SweepPins, so the map
  /// stays bounded by the live working set.
  struct Pin {
    std::string shard;
    std::string tenant;
    std::string session;
    std::chrono::steady_clock::time_point last_used{};
  };
  /// lint: unguarded(migrations_): loop-confined
  std::map<std::string, Pin> migrations_;
  /// lint: unguarded(unix_listener_): loop-confined
  FdHandle unix_listener_;
  /// lint: unguarded(tcp_listener_): loop-confined
  FdHandle tcp_listener_;
  /// lint: unguarded(round_robin_): loop-confined (keyless request spread)
  std::uint64_t round_robin_ = 0;
  /// lint: unguarded(shutting_down_): loop-confined
  bool shutting_down_ = false;
  // Router-level stats (loop-confined).
  /// lint: unguarded(forwarded_): loop-confined
  std::uint64_t forwarded_ = 0;
  /// lint: unguarded(sessions_migrated_): loop-confined
  std::uint64_t sessions_migrated_ = 0;
  /// lint: unguarded(rerouted_): loop-confined
  std::uint64_t rerouted_ = 0;
  /// lint: unguarded(no_shard_rejections_): loop-confined
  std::uint64_t no_shard_rejections_ = 0;
  /// lint: unguarded(retries_exhausted_): loop-confined
  std::uint64_t retries_exhausted_ = 0;
  /// lint: unguarded(fallback_pins_): loop-confined
  std::uint64_t fallback_pins_ = 0;
  /// lint: unguarded(discards_sent_): loop-confined
  std::uint64_t discards_sent_ = 0;
  /// lint: unguarded(pins_expired_): loop-confined
  std::uint64_t pins_expired_ = 0;
};

// --- Client side -----------------------------------------------------------

void Router::OnAcceptable(bool tcp) {
  const int listener = tcp ? tcp_listener_.get() : unix_listener_.get();
  while (true) {
    if (tcp) {
      Result<FdHandle> accepted = util::TcpAccept(listener);
      if (!accepted.ok()) {
        if (accepted.status().IsUnavailable()) return;  // backlog drained
        // Injected (tcp/accept) or transient failure: drop one pending
        // connection so a repeat-armed fault cannot spin the loop.
        const int dropped = ::accept(listener, nullptr, nullptr);
        if (dropped >= 0) ::close(dropped);
        continue;
      }
      RegisterClient(std::move(accepted.value()), /*tcp=*/true);
      continue;
    }
    if (Status injected = util::FaultInjector::Check("server/accept");
        !injected.ok()) {
      const int dropped = ::accept(listener, nullptr, nullptr);
      if (dropped >= 0) ::close(dropped);
      continue;
    }
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) return;  // EAGAIN (drained) or transient failure
    FdHandle fd(client);
    if (!SetNonBlocking(fd.get()).ok()) continue;
    RegisterClient(std::move(fd), /*tcp=*/false);
  }
}

void Router::RegisterClient(FdHandle fd, bool tcp) {
  auto conn = std::make_shared<ClientConn>(
      std::move(fd), static_cast<std::size_t>(config_.max_request_bytes),
      tcp);
  EventLoop::Handler handler;
  handler.on_readable = [this, conn] { OnClientReadable(conn); };
  handler.on_writable = [this, conn] { OnClientWritable(conn); };
  const int raw = conn->fd.get();
  if (!loop_->Add(raw, /*want_read=*/true, /*want_write=*/false,
                  std::move(handler))
           .ok()) {
    return;  // conn (and its fd) die here
  }
  connections_.emplace(raw, std::move(conn));
}

void Router::OnClientReadable(const std::shared_ptr<ClientConn>& conn) {
  if (conn->closed) return;
  if (Status injected = util::FaultInjector::Check(conn->tcp ? "tcp/read"
                                                             : "server/read");
      !injected.ok()) {
    CloseClient(conn);
    return;
  }
  const Result<bool> eof = DrainReadable(conn->fd.get(), &conn->in);
  if (!eof.ok()) {
    CloseClient(conn);
    return;
  }
  if (eof.value()) {
    if (conn->in.mid_line()) {
      CloseClient(conn);  // peer died mid-request
      return;
    }
    conn->saw_eof = true;
    (void)loop_->SetInterest(conn->fd.get(), /*want_read=*/false,
                             /*want_write=*/!conn->out.empty());
  }
  ProcessNextLine(conn);
}

void Router::OnClientWritable(const std::shared_ptr<ClientConn>& conn) {
  if (conn->closed) return;
  FlushOut(conn);
  if (!conn->closed && conn->out.empty()) ProcessNextLine(conn);
}

void Router::ProcessNextLine(const std::shared_ptr<ClientConn>& conn) {
  // Serial per connection, exactly like the daemon: the next request is
  // pulled only once the previous response is fully relayed.
  while (!conn->busy && !conn->closed && !shutting_down_) {
    const std::optional<std::string> line = conn->in.NextLine();
    if (!line.has_value()) break;
    if (line->empty()) continue;
    HandleRequestLine(conn, *line);
  }
  if (!conn->closed && conn->saw_eof && !conn->busy && conn->out.empty() &&
      !conn->in.mid_line()) {
    CloseClient(conn);
  }
}

void Router::HandleRequestLine(const std::shared_ptr<ClientConn>& conn,
                               const std::string& line) {
  conn->busy = true;
  const Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok() || !parsed.value().is_object()) {
    EnqueueResponse(conn, ErrorResponse("INVALID_ARGUMENT",
                                        "bad request JSON"));
    return;
  }
  const JsonValue& request = parsed.value();
  InFlight& flight = conn->flight;
  flight = InFlight{};
  if (const JsonValue* found = request.Find("id"); found != nullptr) {
    flight.id = *found;
    flight.has_id = true;
  }
  flight.method = request.GetString("method", "");
  const JsonValue* params_ptr = request.Find("params");
  const JsonValue params =
      params_ptr != nullptr ? *params_ptr : JsonValue(JsonValue::Object{});

  // ping and stats are answered by the router itself: ping because health
  // probes must not depend on shard health, stats because the interesting
  // numbers (shard states, migrations) live here.
  if (flight.method == "ping") {
    JsonValue::Object result;
    result["pong"] = true;
    result["router"] = true;
    FinishWithLocalResponse(conn, OkResponse(std::move(result)));
    return;
  }
  if (flight.method == "stats") {
    FinishWithLocalResponse(conn, HandleStats());
    return;
  }

  flight.tenant = RequestTenant(params);
  flight.session = params.GetString("session", "");
  if (flight.method.rfind("stream_", 0) == 0) {
    if (flight.session.empty()) {
      FinishWithLocalResponse(
          conn, ErrorResponse("INVALID_ARGUMENT",
                              "the router requires params.session on "
                              "stream_* requests (it is the routing key)"));
      return;
    }
    flight.route_key = store::JoinKey({flight.tenant, flight.session});
  } else if (flight.method == "mine") {
    // Cache affinity: repeat mines for one series land on one shard (whose
    // result cache then hits). Keyless mines spread round-robin.
    const std::string series_id = params.GetString("series_id", "");
    flight.route_key =
        series_id.empty()
            ? "rr" + std::to_string(round_robin_++)
            : store::JoinKey({flight.tenant, series_id});
  } else {
    // sleep and anything future: spread; unknown methods fail shard-side.
    flight.route_key = "rr" + std::to_string(round_robin_++);
  }
  flight.line = line;
  flight.active = true;
  DispatchInFlight(conn);
}

void Router::FinishWithLocalResponse(const std::shared_ptr<ClientConn>& conn,
                                     JsonValue response) {
  if (conn->flight.has_id) {
    response.mutable_object()["id"] = conn->flight.id;
  }
  conn->flight = InFlight{};
  EnqueueResponse(conn, std::move(response));
}

JsonValue Router::RouterOverloaded(const std::string& message) const {
  JsonValue response = ErrorResponse("OVERLOADED", message);
  JsonValue::Object& error =
      response.mutable_object()["error"].mutable_object();
  error["retry_after_ms"] = static_cast<std::size_t>(config_.retry_after_ms);
  error["router"] = true;
  return response;
}

JsonValue Router::HandleStats() const {
  JsonValue::Object shards;
  std::size_t up = 0;
  for (const auto& [name, shard] : shards_) {
    JsonValue::Object entry;
    entry["up"] = shard.up;
    entry["addr"] = shard.spec.host + ":" + std::to_string(shard.spec.port);
    entry["marked_down"] = static_cast<std::size_t>(shard.marked_down);
    entry["reconnects"] = static_cast<std::size_t>(shard.reconnects);
    entry["pings"] = static_cast<std::size_t>(shard.pings);
    entry["forwarded"] = static_cast<std::size_t>(shard.forwarded);
    if (shard.up) ++up;
    shards[name] = JsonValue(std::move(entry));
  }
  JsonValue::Object result;
  result["router"] = true;
  result["shards"] = JsonValue(std::move(shards));
  result["shard_count"] = shards_.size();
  result["up_count"] = up;
  result["connections"] = connections_.size();
  result["forwarded"] = static_cast<std::size_t>(forwarded_);
  result["sessions_migrated"] = static_cast<std::size_t>(sessions_migrated_);
  result["rerouted"] = static_cast<std::size_t>(rerouted_);
  result["migration_pins"] = migrations_.size();
  result["no_shard_rejections"] =
      static_cast<std::size_t>(no_shard_rejections_);
  result["retries_exhausted"] = static_cast<std::size_t>(retries_exhausted_);
  result["fallback_pins"] = static_cast<std::size_t>(fallback_pins_);
  result["discards_sent"] = static_cast<std::size_t>(discards_sent_);
  result["pins_expired"] = static_cast<std::size_t>(pins_expired_);
  return OkResponse(std::move(result));
}

// --- Routing ---------------------------------------------------------------

void Router::DispatchInFlight(const std::shared_ptr<ClientConn>& conn) {
  InFlight& flight = conn->flight;
  if (!flight.active || conn->closed) return;
  if (flight.attempts > config_.route_retries) {
    ++retries_exhausted_;
    FinishWithLocalResponse(
        conn, RouterOverloaded("routing retries exhausted for '" +
                               flight.method + "'"));
    return;
  }
  if (flight.attempts > 0) ++rerouted_;

  // Sticky migration pin first (only while its shard stays healthy), then
  // the consistent-hash ring over healthy shards.
  std::optional<std::string> target;
  if (const auto pin = migrations_.find(flight.route_key);
      pin != migrations_.end()) {
    if (ring_.IsUp(pin->second.shard)) {
      pin->second.last_used = std::chrono::steady_clock::now();
      target = pin->second.shard;
    } else {
      migrations_.erase(pin);
    }
  }
  if (!target.has_value()) target = ring_.Pick(flight.route_key);
  if (!target.has_value()) {
    ++no_shard_rejections_;
    FinishWithLocalResponse(conn,
                            RouterOverloaded("no healthy shard available"));
    return;
  }
  flight.target = *target;
  flight.repair = InFlight::Repair::kNone;
  Upstream* upstream = GetOrConnectUpstream(conn, *target);
  if (upstream == nullptr) {
    // Could not even start a connection: treat the shard as dead. That
    // re-dispatches this request (attempts + 1) along with any other
    // in-flight request targeting it.
    MarkShardDown(*target, "connect failed");
    return;
  }
  SendOnUpstream(conn, upstream, flight.line);
}

// --- Upstreams -------------------------------------------------------------

Router::Upstream* Router::GetOrConnectUpstream(
    const std::shared_ptr<ClientConn>& conn, const std::string& shard_name) {
  if (const auto it = conn->upstreams.find(shard_name);
      it != conn->upstreams.end()) {
    return it->second.get();
  }
  Shard* shard = FindShard(shard_name);
  if (shard == nullptr) return nullptr;
  bool connected = false;
  Result<FdHandle> fd =
      util::TcpConnectStart(shard->spec.host, shard->spec.port, &connected);
  if (!fd.ok()) return nullptr;
  auto upstream = std::make_unique<Upstream>();
  upstream->shard = shard_name;
  upstream->fd = std::move(fd.value());
  upstream->connecting = !connected;
  const int raw = upstream->fd.get();
  EventLoop::Handler handler;
  handler.on_readable = [this, weak = std::weak_ptr<ClientConn>(conn),
                         shard_name] {
    if (auto conn = weak.lock()) OnUpstreamReadable(conn, shard_name);
  };
  handler.on_writable = [this, weak = std::weak_ptr<ClientConn>(conn),
                         shard_name] {
    if (auto conn = weak.lock()) OnUpstreamWritable(conn, shard_name);
  };
  if (!loop_->Add(raw, /*want_read=*/true, /*want_write=*/true,
                  std::move(handler))
           .ok()) {
    return nullptr;
  }
  Upstream* raw_upstream = upstream.get();
  conn->upstreams.emplace(shard_name, std::move(upstream));
  return raw_upstream;
}

void Router::SendOnUpstream(const std::shared_ptr<ClientConn>& conn,
                            Upstream* upstream, const std::string& line) {
  upstream->out += line;
  upstream->out.push_back('\n');
  if (!upstream->connecting) FlushUpstream(conn, upstream);
}

void Router::OnUpstreamWritable(const std::shared_ptr<ClientConn>& conn,
                                const std::string& shard_name) {
  const auto it = conn->upstreams.find(shard_name);
  if (it == conn->upstreams.end()) return;
  Upstream* upstream = it->second.get();
  if (upstream->connecting) {
    if (const Status status = util::TcpConnectFinish(upstream->fd.get());
        !status.ok()) {
      DropUpstream(conn, shard_name);
      MarkShardDown(shard_name, "upstream connect: " + status.message());
      return;
    }
    upstream->connecting = false;
  }
  FlushUpstream(conn, upstream);
}

void Router::FlushUpstream(const std::shared_ptr<ClientConn>& conn,
                           Upstream* upstream) {
  if (Status injected = util::FaultInjector::Check("tcp/write");
      !injected.ok()) {
    const std::string shard_name = upstream->shard;
    DropUpstream(conn, shard_name);
    MarkShardDown(shard_name, "injected write fault");
    return;
  }
  const Result<bool> sent =
      SendSome(upstream->fd.get(), upstream->out, &upstream->out_offset);
  if (!sent.ok()) {
    const std::string shard_name = upstream->shard;
    DropUpstream(conn, shard_name);
    MarkShardDown(shard_name, "upstream write: " + sent.status().message());
    return;
  }
  if (sent.value()) {
    upstream->out.clear();
    upstream->out_offset = 0;
  }
  (void)loop_->SetInterest(upstream->fd.get(), /*want_read=*/true,
                           /*want_write=*/!upstream->out.empty());
}

void Router::OnUpstreamReadable(const std::shared_ptr<ClientConn>& conn,
                                const std::string& shard_name) {
  const auto it = conn->upstreams.find(shard_name);
  if (it == conn->upstreams.end()) return;
  Upstream* upstream = it->second.get();
  if (Status injected = util::FaultInjector::Check("tcp/read");
      !injected.ok()) {
    DropUpstream(conn, shard_name);
    MarkShardDown(shard_name, "injected read fault");
    return;
  }
  const Result<bool> eof = DrainReadable(upstream->fd.get(), &upstream->in);
  if (!eof.ok() || eof.value()) {
    DropUpstream(conn, shard_name);
    MarkShardDown(shard_name, eof.ok() ? "upstream EOF"
                                       : "upstream read error");
    return;
  }
  // At most one response is outstanding per upstream (serial semantics),
  // but the migration repair sends a follow-up request from inside the
  // handler, so keep popping until the buffer runs dry.
  while (true) {
    const std::optional<std::string> line = upstream->in.NextLine();
    if (!line.has_value()) break;
    HandleUpstreamResponse(conn, shard_name, *line);
    if (conn->closed) return;
    if (conn->upstreams.find(shard_name) == conn->upstreams.end()) return;
  }
}

void Router::HandleUpstreamResponse(const std::shared_ptr<ClientConn>& conn,
                                    const std::string& shard_name,
                                    const std::string& line) {
  InFlight& flight = conn->flight;
  if (!flight.active || flight.target != shard_name) return;  // stale
  const Result<JsonValue> parsed = JsonValue::Parse(line);
  const bool ok =
      parsed.ok() && parsed.value().GetBool("ok", false);
  std::string error_code;
  if (parsed.ok() && !ok) {
    if (const JsonValue* error = parsed.value().Find("error");
        error != nullptr) {
      error_code = error->GetString("code", "");
    }
  }

  if (flight.repair == InFlight::Repair::kDiscard) {
    // Reply to our internal stream_discard of a stale duplicate (any
    // outcome is fine — NOT_FOUND just means there was nothing to purge).
    // Proceed to the resume step against the authoritative checkpoint.
    flight.repair = InFlight::Repair::kResume;
    JsonValue::Object params;
    params["tenant"] = flight.tenant;
    params["session"] = flight.session;
    params["resume"] = true;
    JsonValue::Object request;
    request["method"] = std::string("stream_open");
    request["params"] = JsonValue(std::move(params));
    Upstream* upstream = conn->upstreams.at(shard_name).get();
    SendOnUpstream(conn, upstream, JsonValue(std::move(request)).Dump());
    return;
  }

  if (flight.repair == InFlight::Repair::kResume) {
    // This is the reply to our internal stream_open{resume:true}. Success
    // (or "already open", meaning a concurrent repair won) pins the session
    // to this shard and resends the original request; anything else (no
    // checkpoint to thaw, shard overloaded) is surfaced to the client with
    // its own id.
    flight.repair = InFlight::Repair::kNone;
    const bool already_open =
        error_code == "INVALID_ARGUMENT" &&
        line.find("already open") != std::string::npos;
    if (ok || already_open) {
      const auto pin = migrations_.find(flight.route_key);
      if (pin == migrations_.end() || pin->second.shard != shard_name) {
        migrations_[flight.route_key] =
            Pin{shard_name, flight.tenant, flight.session,
                std::chrono::steady_clock::now()};
        ++sessions_migrated_;
        // Any other live copy of this session is now a stale duplicate: it
        // would shadow future NOT_FOUND repair and serve wrong detects.
        DiscardElsewhere(shard_name, flight.tenant, flight.session);
      }
      Upstream* upstream = conn->upstreams.at(shard_name).get();
      SendOnUpstream(conn, upstream, flight.line);
      return;
    }
    JsonValue relayed =
        parsed.ok() && parsed.value().Find("error") != nullptr
            ? ErrorResponse(error_code.empty() ? "NOT_FOUND" : error_code,
                            "session migration failed: " +
                                parsed.value()
                                    .Find("error")
                                    ->GetString("message", ""))
            : ErrorResponse("NOT_FOUND", "session migration failed");
    FinishWithLocalResponse(conn, std::move(relayed));
    return;
  }

  // NOT_FOUND on a stream the router routed here usually means the session
  // lived on a shard that died: repair by thawing from the shared
  // checkpoint directory, once per request. A feed bounced with an offset
  // mismatch is the same wound with a different scar — the shard holds a
  // stale duplicate of the session (left by a health flap) whose size
  // cannot match the client's position — so repair purges that copy first,
  // then thaws. A genuinely bad client offset survives the repair: the
  // thawed session rejects the resent feed the same way, and that reply is
  // relayed.
  const bool stream_request = flight.method == "stream_feed" ||
                              flight.method == "stream_detect" ||
                              flight.method == "stream_close";
  const bool stale_copy_suspect =
      flight.method == "stream_feed" && error_code == "INVALID_ARGUMENT" &&
      line.find("does not match session size") != std::string::npos;
  if (!ok && stream_request && !flight.resume_tried &&
      (error_code == "NOT_FOUND" || stale_copy_suspect)) {
    flight.resume_tried = true;
    JsonValue::Object params;
    params["tenant"] = flight.tenant;
    params["session"] = flight.session;
    JsonValue::Object request;
    if (stale_copy_suspect) {
      flight.repair = InFlight::Repair::kDiscard;
      request["method"] = std::string("stream_discard");
    } else {
      // Nothing to purge on a NOT_FOUND: go straight to the resume step.
      flight.repair = InFlight::Repair::kResume;
      params["resume"] = true;
      request["method"] = std::string("stream_open");
    }
    request["params"] = JsonValue(std::move(params));
    Upstream* upstream = conn->upstreams.at(shard_name).get();
    SendOnUpstream(conn, upstream, JsonValue(std::move(request)).Dump());
    return;
  }

  if (ok && flight.method == "stream_close") {
    migrations_.erase(flight.route_key);  // placement reverts to the ring
  } else if (ok && flight.method.rfind("stream_", 0) == 0) {
    // Served off the primary (the ring walked past a down owner): pin the
    // key here. Without the pin, the owner's recovery would pull the next
    // request back to a shard without the live state — and worse, a later
    // repair there would strand THIS copy as a zombie that serves stale
    // detects once its shard takes ring traffic again.
    const std::optional<std::string> primary =
        ring_.PickPrimary(flight.route_key);
    if (primary.has_value() && *primary != shard_name &&
        migrations_.find(flight.route_key) == migrations_.end()) {
      migrations_[flight.route_key] =
          Pin{shard_name, flight.tenant, flight.session,
              std::chrono::steady_clock::now()};
      ++fallback_pins_;
    }
  }
  ++forwarded_;
  if (Shard* shard = FindShard(shard_name); shard != nullptr) {
    ++shard->forwarded;
  }
  flight = InFlight{};
  RelayVerbatim(conn, line);
}

void Router::DropUpstream(const std::shared_ptr<ClientConn>& conn,
                          const std::string& shard_name) {
  const auto it = conn->upstreams.find(shard_name);
  if (it == conn->upstreams.end()) return;
  loop_->Remove(it->second->fd.get());
  conn->upstreams.erase(it);
}

// --- Client output ---------------------------------------------------------

void Router::EnqueueResponse(const std::shared_ptr<ClientConn>& conn,
                             JsonValue response) {
  RelayVerbatim(conn, response.Dump());
}

void Router::RelayVerbatim(const std::shared_ptr<ClientConn>& conn,
                           const std::string& line) {
  if (conn->closed) return;
  if (Status injected = util::FaultInjector::Check(conn->tcp ? "tcp/write"
                                                             : "server/write");
      !injected.ok()) {
    CloseClient(conn);
    return;
  }
  conn->out += line;
  conn->out.push_back('\n');
  FlushOut(conn);
  if (!conn->closed && conn->out.empty()) ProcessNextLine(conn);
}

void Router::FlushOut(const std::shared_ptr<ClientConn>& conn) {
  const Result<bool> sent =
      SendSome(conn->fd.get(), conn->out, &conn->out_offset);
  if (!sent.ok()) {
    CloseClient(conn);
    return;
  }
  if (sent.value()) {
    conn->out.clear();
    conn->out_offset = 0;
    conn->busy = false;
    (void)loop_->SetInterest(conn->fd.get(), /*want_read=*/!conn->saw_eof,
                             /*want_write=*/false);
  } else {
    (void)loop_->SetInterest(conn->fd.get(), /*want_read=*/false,
                             /*want_write=*/true);
  }
}

void Router::CloseClient(const std::shared_ptr<ClientConn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  conn->flight = InFlight{};
  for (auto& [name, upstream] : conn->upstreams) {
    loop_->Remove(upstream->fd.get());
  }
  conn->upstreams.clear();
  loop_->Remove(conn->fd.get());
  connections_.erase(conn->fd.get());
}

// --- Shard supervision -----------------------------------------------------

Router::Shard* Router::FindShard(const std::string& name) {
  const auto it = shards_.find(name);
  return it == shards_.end() ? nullptr : &it->second;
}

void Router::StartHeartbeatConnect(const std::string& name) {
  Shard* shard = FindShard(name);
  if (shard == nullptr || shard->hb_fd.valid() || shutting_down_) return;
  bool connected = false;
  Result<FdHandle> fd =
      util::TcpConnectStart(shard->spec.host, shard->spec.port, &connected);
  if (!fd.ok()) {
    ScheduleReconnect(shard);
    return;
  }
  shard->hb_fd = std::move(fd.value());
  shard->hb_connecting = !connected;
  shard->hb_in = LineBuffer();
  shard->hb_out.clear();
  shard->hb_out_offset = 0;
  EventLoop::Handler handler;
  handler.on_readable = [this, name] { OnHeartbeatReadable(name); };
  handler.on_writable = [this, name] { OnHeartbeatWritable(name); };
  if (!loop_->Add(shard->hb_fd.get(), /*want_read=*/true, /*want_write=*/true,
                  std::move(handler))
           .ok()) {
    shard->hb_fd.Close();
    ScheduleReconnect(shard);
    return;
  }
  if (!shard->hb_connecting) SendPing(name);
}

void Router::OnHeartbeatWritable(const std::string& name) {
  Shard* shard = FindShard(name);
  if (shard == nullptr || !shard->hb_fd.valid()) return;
  if (shard->hb_connecting) {
    if (const Status status = util::TcpConnectFinish(shard->hb_fd.get());
        !status.ok()) {
      CloseHeartbeat(shard);
      if (shard->up) {
        MarkShardDown(name, "heartbeat connect: " + status.message());
      } else {
        ScheduleReconnect(shard);
      }
      return;
    }
    shard->hb_connecting = false;
    SendPing(name);
    return;
  }
  FlushHeartbeat(shard);
}

void Router::SendPing(const std::string& name) {
  Shard* shard = FindShard(name);
  if (shard == nullptr || !shard->hb_fd.valid() || shard->hb_connecting ||
      shutting_down_) {
    return;
  }
  shard->hb_out += "{\"id\":\"hb\",\"method\":\"ping\"}\n";
  shard->awaiting_pong = true;
  ++shard->pings;
  if (shard->deadline_timer != 0) loop_->CancelTimer(shard->deadline_timer);
  const std::int64_t timeout = config_.heartbeat_timeout_ms > 0
                                   ? config_.heartbeat_timeout_ms
                                   : 2 * config_.heartbeat_ms;
  shard->deadline_timer = loop_->RunAfter(
      std::chrono::milliseconds(timeout), [this, name] {
        OnPingDeadline(name);
      });
  FlushHeartbeat(shard);
}

void Router::FlushHeartbeat(Shard* shard) {
  if (!shard->hb_fd.valid()) return;
  const Result<bool> sent =
      SendSome(shard->hb_fd.get(), shard->hb_out, &shard->hb_out_offset);
  if (!sent.ok()) {
    const std::string name = shard->spec.name;
    CloseHeartbeat(shard);
    if (shard->up) {
      MarkShardDown(name, "heartbeat write: " + sent.status().message());
    } else {
      ScheduleReconnect(shard);
    }
    return;
  }
  if (sent.value()) {
    shard->hb_out.clear();
    shard->hb_out_offset = 0;
  }
  (void)loop_->SetInterest(shard->hb_fd.get(), /*want_read=*/true,
                           /*want_write=*/!shard->hb_out.empty());
}

void Router::OnHeartbeatReadable(const std::string& name) {
  Shard* shard = FindShard(name);
  if (shard == nullptr || !shard->hb_fd.valid()) return;
  const Result<bool> eof = DrainReadable(shard->hb_fd.get(), &shard->hb_in);
  if (!eof.ok() || eof.value()) {
    CloseHeartbeat(shard);
    if (shard->up) {
      MarkShardDown(name, "heartbeat connection lost");
    } else {
      ScheduleReconnect(shard);
    }
    return;
  }
  while (true) {
    const std::optional<std::string> line = shard->hb_in.NextLine();
    if (!line.has_value()) break;
    // Any complete response settles the outstanding ping.
    if (!shard->awaiting_pong) continue;
    shard->awaiting_pong = false;
    if (shard->deadline_timer != 0) {
      loop_->CancelTimer(shard->deadline_timer);
      shard->deadline_timer = 0;
    }
    if (!shard->up) MarkShardUp(name);
    if (shard->ping_timer != 0) loop_->CancelTimer(shard->ping_timer);
    shard->ping_timer = loop_->RunAfter(
        std::chrono::milliseconds(config_.heartbeat_ms),
        [this, name] { SendPing(name); });
  }
}

void Router::OnPingDeadline(const std::string& name) {
  Shard* shard = FindShard(name);
  if (shard == nullptr) return;
  shard->deadline_timer = 0;
  if (!shard->awaiting_pong) return;  // pong won the race
  CloseHeartbeat(shard);
  if (shard->up) {
    MarkShardDown(name, "ping deadline exceeded");
  } else {
    ScheduleReconnect(shard);
  }
}

void Router::MarkShardUp(const std::string& name) {
  Shard* shard = FindShard(name);
  if (shard == nullptr || shard->up) return;
  shard->up = true;
  shard->backoff_attempt = 0;
  ring_.SetUp(name, true);
  std::fprintf(stderr, "periodica_router: shard %s up (%s:%u)\n",
               name.c_str(), shard->spec.host.c_str(),
               static_cast<unsigned>(shard->spec.port));
  // Rejoin purge: while this shard was away, any session pinned elsewhere
  // may have left a stale live copy here (it went down mid-stream; the
  // stream repaired onto a peer). Discard those copies now, before ring
  // traffic can reach them — they hold superseded state and their
  // per-feed checkpoints would fight the real owner's.
  // Snapshot the discard lines before sending: QueueShardControl can flush,
  // and a failed flush re-enters MarkShardDown -> DispatchInFlight, which
  // may erase from migrations_ — never send while iterating it.
  std::vector<std::string> discards;
  discards.reserve(migrations_.size());
  for (const auto& [key, pin] : migrations_) {
    if (pin.shard == name) continue;
    discards.push_back(DiscardRequestLine(pin.tenant, pin.session));
  }
  for (const std::string& line : discards) {
    QueueShardControl(shard, line);
    ++discards_sent_;
  }
}

void Router::MarkShardDown(const std::string& name,
                           const std::string& reason) {
  Shard* shard = FindShard(name);
  if (shard == nullptr) return;
  const bool was_up = shard->up;
  shard->up = false;
  ring_.SetUp(name, false);
  shard->awaiting_pong = false;
  if (shard->deadline_timer != 0) {
    loop_->CancelTimer(shard->deadline_timer);
    shard->deadline_timer = 0;
  }
  if (shard->ping_timer != 0) {
    loop_->CancelTimer(shard->ping_timer);
    shard->ping_timer = 0;
  }
  CloseHeartbeat(shard);
  if (was_up) {
    ++shard->marked_down;
    std::fprintf(stderr, "periodica_router: shard %s down (%s)\n",
                 name.c_str(), reason.c_str());
  }
  ScheduleReconnect(shard);

  // Fail over every client touching the dead shard: idle upstreams are
  // closed (their next use would just fail slower), in-flight requests
  // re-dispatch against the ring minus this shard. Collect first — the
  // re-dispatches below can mutate connections_.
  std::vector<std::shared_ptr<ClientConn>> affected;
  for (const auto& [fd, conn] : connections_) {
    if (conn->upstreams.find(name) != conn->upstreams.end() ||
        (conn->flight.active && conn->flight.target == name)) {
      affected.push_back(conn);
    }
  }
  for (const std::shared_ptr<ClientConn>& conn : affected) {
    if (conn->closed) continue;
    DropUpstream(conn, name);
    if (conn->flight.active && conn->flight.target == name) {
      ++conn->flight.attempts;
      if (conn->flight.repair != InFlight::Repair::kNone) {
        // The shard died mid-repair (discard/resume chain unfinished), so
        // the repair never happened: give the next target its one attempt,
        // or a thawable checkpoint would be surfaced as NOT_FOUND.
        conn->flight.resume_tried = false;
      }
      conn->flight.repair = InFlight::Repair::kNone;
      DispatchInFlight(conn);
    }
  }
}

std::string Router::DiscardRequestLine(const std::string& tenant,
                                       const std::string& session) {
  JsonValue::Object params;
  params["tenant"] = tenant;
  params["session"] = session;
  JsonValue::Object request;
  request["id"] = std::string("gc");
  request["method"] = std::string("stream_discard");
  request["params"] = JsonValue(std::move(params));
  return JsonValue(std::move(request)).Dump();
}

void Router::QueueShardControl(Shard* shard, const std::string& line) {
  if (!shard->hb_fd.valid() || shutting_down_) return;
  shard->hb_out += line;
  shard->hb_out.push_back('\n');
  if (!shard->hb_connecting) FlushHeartbeat(shard);
}

void Router::DiscardElsewhere(const std::string& keep,
                              const std::string& tenant,
                              const std::string& session) {
  for (auto& [name, shard] : shards_) {
    if (name == keep || !shard.up) continue;
    QueueShardControl(&shard, DiscardRequestLine(tenant, session));
    ++discards_sent_;
  }
}

void Router::SweepPins() {
  if (shutting_down_) return;
  const auto now = std::chrono::steady_clock::now();
  const auto ttl = std::chrono::seconds(config_.pin_ttl_s);
  // Collect first: the discards below can flush a heartbeat, and a failed
  // flush re-enters MarkShardDown -> DispatchInFlight, which may mutate
  // migrations_ under a live iterator.
  std::vector<Pin> expired;
  for (auto it = migrations_.begin(); it != migrations_.end();) {
    if (now - it->second.last_used >= ttl) {
      expired.push_back(it->second);
      it = migrations_.erase(it);
    } else {
      ++it;
    }
  }
  for (const Pin& pin : expired) {
    ++pins_expired_;
    // With the pin gone, placement reverts to the ring; a live copy left
    // on the pinned shard would be a zombie there, so drop it. The on-disk
    // checkpoint survives — a returning client still repairs via thaw.
    if (Shard* shard = FindShard(pin.shard); shard != nullptr && shard->up) {
      QueueShardControl(shard, DiscardRequestLine(pin.tenant, pin.session));
      ++discards_sent_;
    }
  }
  SchedulePinSweep();
}

void Router::SchedulePinSweep() {
  if (config_.pin_ttl_s <= 0 || shutting_down_) return;
  // Sweep a few times per TTL so expiry lag stays a fraction of the TTL.
  std::int64_t period_ms = config_.pin_ttl_s * 1000 / 4;
  if (period_ms < 1000) period_ms = 1000;
  loop_->RunAfter(std::chrono::milliseconds(period_ms),
                  [this] { SweepPins(); });
}

void Router::CloseHeartbeat(Shard* shard) {
  if (!shard->hb_fd.valid()) return;
  loop_->Remove(shard->hb_fd.get());
  shard->hb_fd.Close();
  shard->hb_connecting = false;
}

void Router::ScheduleReconnect(Shard* shard) {
  if (shard->reconnect_scheduled || shutting_down_) return;
  shard->reconnect_scheduled = true;
  ++shard->reconnects;
  const std::int64_t delay = NextBackoffMs(
      shard->backoff_attempt++, /*retry_after_ms=*/0,
      config_.reconnect_max_ms, config_.reconnect_base_ms, &rng_);
  const std::string name = shard->spec.name;
  loop_->RunAfter(std::chrono::milliseconds(delay), [this, name] {
    Shard* shard = FindShard(name);
    if (shard == nullptr) return;
    shard->reconnect_scheduled = false;
    StartHeartbeatConnect(name);
  });
}

// --- Lifecycle -------------------------------------------------------------

void Router::OnWakePipe() {
  char drain[256];
  while (::read(g_wake_pipe[0], drain, sizeof(drain)) > 0) {
  }
  if (g_shutdown.load(std::memory_order_relaxed)) BeginShutdown();
}

void Router::BeginShutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  // The router holds no durable state: stop accepting, let clients see EOF
  // and retry against a restarted router. Shards drain on their own.
  if (unix_listener_.valid()) {
    loop_->Remove(unix_listener_.get());
    unix_listener_.Close();
  }
  if (tcp_listener_.valid()) {
    loop_->Remove(tcp_listener_.get());
    tcp_listener_.Close();
  }
  loop_->Stop();
}

Status Router::Run() {
  PERIODICA_ASSIGN_OR_RETURN(loop_, EventLoop::Create());

  for (const ShardSpec& spec : specs_) {
    PERIODICA_RETURN_NOT_OK(ring_.AddShard(spec.name));
    ring_.SetUp(spec.name, false);  // down until the first pong
    Shard shard;
    shard.spec = spec;
    shards_.emplace(spec.name, std::move(shard));
  }

  if (!config_.listen_socket.empty()) {
    PERIODICA_ASSIGN_OR_RETURN(unix_listener_,
                               ListenUnix(config_.listen_socket));
    PERIODICA_RETURN_NOT_OK(SetNonBlocking(unix_listener_.get()));
    EventLoop::Handler handler;
    handler.on_readable = [this] { OnAcceptable(/*tcp=*/false); };
    PERIODICA_RETURN_NOT_OK(loop_->Add(unix_listener_.get(),
                                       /*want_read=*/true,
                                       /*want_write=*/false,
                                       std::move(handler)));
  }
  if (config_.listen_port >= 0) {
    std::uint16_t bound_port = 0;
    PERIODICA_ASSIGN_OR_RETURN(
        tcp_listener_,
        util::TcpListen(config_.listen_host,
                        static_cast<std::uint16_t>(config_.listen_port),
                        /*backlog=*/64, &bound_port));
    EventLoop::Handler handler;
    handler.on_readable = [this] { OnAcceptable(/*tcp=*/true); };
    PERIODICA_RETURN_NOT_OK(loop_->Add(tcp_listener_.get(),
                                       /*want_read=*/true,
                                       /*want_write=*/false,
                                       std::move(handler)));
    // Machine-readable (tools/soak.sh scrapes the ephemeral port).
    std::fprintf(stderr, "periodica_router: tcp listening on %s:%u\n",
                 config_.listen_host.c_str(),
                 static_cast<unsigned>(bound_port));
  }

  PERIODICA_RETURN_NOT_OK(SetNonBlocking(g_wake_pipe[0]));
  EventLoop::Handler wake_handler;
  wake_handler.on_readable = [this] { OnWakePipe(); };
  PERIODICA_RETURN_NOT_OK(loop_->Add(g_wake_pipe[0], /*want_read=*/true,
                                     /*want_write=*/false,
                                     std::move(wake_handler)));

  for (const ShardSpec& spec : specs_) {
    StartHeartbeatConnect(spec.name);
  }
  SchedulePinSweep();

  std::fprintf(stderr,
               "periodica_router: routing %zu shards (heartbeat %lld ms)\n",
               specs_.size(),
               static_cast<long long>(config_.heartbeat_ms));
  return loop_->Run();
}

// --- main ------------------------------------------------------------------

/// Same spec grammar as periodicad --faults (the soak arms tcp/* sites in
/// the router to walk its upstream failure paths).
Status ArmFaults(const std::string& spec,
                 std::vector<std::unique_ptr<util::ScopedFault>>* armed) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("--faults item '" + item +
                                     "' is not site:nth[:repeat]");
    }
    const std::string site = item.substr(0, colon);
    std::string rest = item.substr(colon + 1);
    bool repeat = false;
    if (const std::size_t colon2 = rest.find(':');
        colon2 != std::string::npos) {
      repeat = rest.substr(colon2 + 1) == "repeat";
      rest = rest.substr(0, colon2);
    }
    char* parse_end = nullptr;
    const unsigned long long nth = std::strtoull(rest.c_str(), &parse_end, 10);
    if (parse_end == rest.c_str() || *parse_end != '\0' || nth == 0) {
      return Status::InvalidArgument("--faults item '" + item +
                                     "' has a bad hit number");
    }
    armed->push_back(std::make_unique<util::ScopedFault>(
        site, Status::IOError("injected fault at " + site), nth, repeat));
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  RouterConfig config;
  FlagSet flags("periodica_router");
  flags.AddString("listen_socket", &config.listen_socket,
                  "Unix socket to accept clients on");
  flags.AddInt64("listen_port", &config.listen_port,
                 "TCP port to accept clients on (0 = let the kernel pick; "
                 "-1 = Unix socket only)");
  flags.AddString("listen_host", &config.listen_host,
                  "bind address for --listen_port");
  flags.AddString("shards", &config.shards,
                  "shard fleet as name=host:port,... (required; names are "
                  "the consistent-hash ring identities)");
  flags.AddInt64("virtual_nodes", &config.virtual_nodes,
                 "ring positions per shard (placement smoothness)");
  flags.AddInt64("heartbeat_ms", &config.heartbeat_ms,
                 "ping interval per shard");
  flags.AddInt64("heartbeat_timeout_ms", &config.heartbeat_timeout_ms,
                 "pong deadline before a shard is marked down (0 = twice "
                 "the heartbeat interval)");
  flags.AddInt64("reconnect_base_ms", &config.reconnect_base_ms,
                 "base for the down-shard reconnect backoff");
  flags.AddInt64("reconnect_max_ms", &config.reconnect_max_ms,
                 "cap on the reconnect backoff (pre-jitter)");
  flags.AddInt64("route_retries", &config.route_retries,
                 "re-route attempts per request before OVERLOADED");
  flags.AddInt64("retry_after_ms", &config.retry_after_ms,
                 "retry hint in router-origin OVERLOADED rejections");
  flags.AddInt64("max_request_bytes", &config.max_request_bytes,
                 "largest accepted request line");
  flags.AddInt64("pin_ttl_s", &config.pin_ttl_s,
                 "expire a migration pin after this many idle seconds, "
                 "discarding the abandoned session's live copy (0 = never)");
  flags.AddString("faults", &config.faults,
                  "fault sites to arm for the process lifetime, as "
                  "site:nth[:repeat],... (tools/soak.sh)");
  flags.SetEpilog(
      "Routes the periodicad protocol across a fleet of TCP shards with\n"
      "health-checked consistent hashing and live session migration\n"
      "(docs/SERVING.md). SIGTERM/SIGINT shut the router down; it holds no\n"
      "durable state.");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "periodica_router: %s\n%s",
                 status.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (config.listen_socket.empty() && config.listen_port < 0) {
    std::fprintf(stderr,
                 "periodica_router: --listen_socket or --listen_port is "
                 "required\n%s",
                 flags.Usage().c_str());
    return 2;
  }
  if (config.listen_port > 65535) {
    std::fprintf(stderr, "periodica_router: --listen_port must be <= 65535\n");
    return 2;
  }
  if (config.heartbeat_ms <= 0 || config.heartbeat_timeout_ms < 0 ||
      config.reconnect_base_ms <= 0 || config.reconnect_max_ms <= 0 ||
      config.route_retries < 0 || config.retry_after_ms < 0 ||
      config.max_request_bytes <= 0 || config.virtual_nodes <= 0 ||
      config.pin_ttl_s < 0) {
    std::fprintf(stderr, "periodica_router: flag out of range\n");
    return 2;
  }
  std::vector<ShardSpec> specs;
  if (const Status status = ParseShards(config.shards, &specs);
      !status.ok()) {
    std::fprintf(stderr, "periodica_router: %s\n", status.ToString().c_str());
    return 2;
  }

  std::vector<std::unique_ptr<util::ScopedFault>> armed_faults;
  if (const Status status = ArmFaults(config.faults, &armed_faults);
      !status.ok()) {
    std::fprintf(stderr, "periodica_router: %s\n", status.ToString().c_str());
    return 2;
  }

  if (::pipe(g_wake_pipe) != 0) {
    std::fprintf(stderr, "periodica_router: pipe() failed\n");
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  Router router(std::move(config), std::move(specs));
  if (const Status status = router.Run(); !status.ok()) {
    std::fprintf(stderr, "periodica_router: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace periodica::tools

int main(int argc, char** argv) { return periodica::tools::Main(argc, argv); }
