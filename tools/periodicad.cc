// periodicad: a long-running periodicity-mining service over a local Unix
// socket, speaking newline-delimited JSON (docs/SERVING.md).
//
// The daemon exists to demonstrate — and test — graceful degradation of the
// mining engines under production pressures the CLI never faces:
//
//  * admission control: mining work enters a bounded util::JobQueue; when
//    the backlog is past its depth or queue-wait-latency limit the request
//    is *rejected* with a structured OVERLOADED error carrying a
//    retry-after hint, never silently queued without bound;
//  * memory budgets: each request is estimated upfront
//    (core/memory_estimate.h) and charged mid-flight against a per-request
//    cap and the process-global pool, so one oversized series fails alone
//    with RESOURCE_EXHAUSTED instead of OOM-killing every in-flight job;
//  * deadlines and a watchdog: every mining job runs under a
//    CancellationToken; a watchdog thread cancels jobs that exceed the
//    wedge timeout, turning a hung worker into a partial result;
//  * graceful drain: SIGTERM/SIGINT stop admission, finish (or cancel, at
//    the drain deadline) in-flight jobs, checkpoint open streaming sessions
//    to --checkpoint_dir (core/checkpoint.h), and exit 0.
//
// Fault-injection sites "server/accept", "server/read", "server/write"
// (armed via --faults) let the soak test walk the failure edges of the
// exact binary that serves real traffic.

#include <csignal>
#include <sys/select.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "periodica/core/checkpoint.h"
#include "periodica/core/memory_estimate.h"
#include "periodica/core/miner.h"
#include "periodica/core/streaming_detector.h"
#include "periodica/series/series.h"
#include "periodica/util/cancellation.h"
#include "periodica/util/fault_injector.h"
#include "periodica/util/flags.h"
#include "periodica/util/job_queue.h"
#include "periodica/util/json.h"
#include "periodica/util/memory_budget.h"
#include "periodica/util/sync.h"
#include "unix_socket.h"

namespace periodica::tools {
namespace {

using util::JobQueue;
using util::JsonValue;

/// Set from the signal handler, polled by the accept loop, the watchdog and
/// every connection thread.
///
/// Ordering: relaxed. A one-way level-triggered flag: loops that read it a
/// beat late run one extra iteration and then exit, which shutdown
/// tolerates by construction (drain waits for the queue and joins every
/// thread). No data is published through this flag — and a signal handler
/// could not establish a happens-before edge anyway.
std::atomic<bool> g_shutdown{false};
int g_wake_pipe[2] = {-1, -1};

void HandleShutdownSignal(int /*signo*/) {
  g_shutdown.store(true, std::memory_order_relaxed);
  // Wake the accept loop; write(2) is async-signal-safe.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t ignored = ::write(g_wake_pipe[1], &byte, 1);
}

struct DaemonConfig {
  std::string socket_path;
  std::string checkpoint_dir;
  std::int64_t workers = 1;
  std::int64_t max_queue_depth = 16;
  double max_queue_latency_ms = 0.0;
  std::int64_t memory_budget_bytes = 0;   // process pool; 0 = unlimited
  std::int64_t request_budget_bytes = 0;  // per-request default cap
  std::int64_t default_deadline_ms = 0;
  std::int64_t wedge_timeout_ms = 0;  // watchdog cancel threshold; 0 = off
  std::int64_t watchdog_interval_ms = 250;
  std::int64_t max_request_bytes = 64 << 20;
  std::string faults;  // "site:nth[:repeat],..." armed for the process life
};

/// One open streaming session (stream_open .. stream_close). Sessions are
/// daemon-global, named by the client, and serialized per-session: feeds and
/// detects on the same session take its mutex.
struct StreamSession {
  util::Mutex mutex;
  std::unique_ptr<StreamingPeriodDetector> detector
      PERIODICA_GUARDED_BY(mutex);
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config)
      : config_(std::move(config)),
        pool_(static_cast<std::size_t>(
            std::max<std::int64_t>(0, config_.memory_budget_bytes))),
        queue_(MakeQueueOptions(config_)) {}

  Status Run();
  void RequestShutdown() { g_shutdown.store(true); }

 private:
  static JobQueue::Options MakeQueueOptions(const DaemonConfig& config) {
    JobQueue::Options options;
    options.num_threads = static_cast<std::size_t>(config.workers);
    options.max_queue_depth =
        static_cast<std::size_t>(config.max_queue_depth);
    options.max_queue_latency_ms = config.max_queue_latency_ms;
    return options;
  }

  void ServeConnection(FdHandle fd);
  JsonValue Dispatch(const JsonValue& request);

  JsonValue HandlePing();
  JsonValue HandleStats();
  JsonValue HandleSleep(const JsonValue& params);
  JsonValue HandleMine(const JsonValue& params);
  JsonValue HandleStreamOpen(const JsonValue& params);
  JsonValue HandleStreamFeed(const JsonValue& params);
  JsonValue HandleStreamDetect(const JsonValue& params);
  JsonValue HandleStreamClose(const JsonValue& params);

  /// Runs `work` on the job queue at `priority` and blocks the connection
  /// thread until it finishes; a rejected submission becomes the structured
  /// OVERLOADED (or draining) error instead.
  JsonValue RunQueued(JobQueue::Priority priority,
                      std::function<JsonValue()> work);

  void WatchdogLoop();
  void CheckpointSessionsForDrain();

  std::string CheckpointPath(const std::string& session) const {
    return config_.checkpoint_dir + "/" + session + ".pchk";
  }

  /// Finds an open session by name (nullptr if absent). The returned
  /// shared_ptr keeps the session alive even if a concurrent stream_close
  /// removes it from the map.
  std::shared_ptr<StreamSession> FindSession(const std::string& name)
      PERIODICA_EXCLUDES(sessions_mutex_);

  const DaemonConfig config_;        ///< immutable after construction
  util::MemoryBudget pool_;          // lint: unguarded(pool_): internally atomic
  JobQueue queue_;                   // lint: unguarded(queue_): has its own mutex

  util::Mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<StreamSession>> sessions_
      PERIODICA_GUARDED_BY(sessions_mutex_);

  /// In-flight mining jobs, for the watchdog: id -> (token, start).
  struct FlightRecord {
    util::CancellationToken* token;
    std::chrono::steady_clock::time_point start;
  };
  util::Mutex flights_mutex_;
  std::map<std::uint64_t, FlightRecord> flights_
      PERIODICA_GUARDED_BY(flights_mutex_);
  std::uint64_t next_flight_id_ PERIODICA_GUARDED_BY(flights_mutex_) = 0;
  /// Jobs the watchdog has ever cancelled (surfaced in `stats`).
  ///
  /// Ordering: relaxed — monotone statistic; the cancellation itself goes
  /// through CancellationToken, not through this counter.
  std::atomic<std::uint64_t> watchdog_cancels_{0};

  util::Mutex threads_mutex_;
  std::vector<std::thread> connection_threads_
      PERIODICA_GUARDED_BY(threads_mutex_);
  /// Live connection fds, so drain can shutdown(2) them and unblock the
  /// threads parked in recv.
  std::set<int> connection_fds_ PERIODICA_GUARDED_BY(threads_mutex_);
};

// --- JSON response helpers -------------------------------------------------

JsonValue ErrorResponse(const std::string& code, const std::string& message) {
  JsonValue::Object error;
  error["code"] = code;
  error["message"] = message;
  JsonValue::Object response;
  response["ok"] = false;
  response["error"] = JsonValue(std::move(error));
  return JsonValue(std::move(response));
}

JsonValue StatusToResponse(const Status& status) {
  std::string code = "INTERNAL";
  if (status.IsInvalidArgument()) code = "INVALID_ARGUMENT";
  if (status.IsResourceExhausted()) code = "RESOURCE_EXHAUSTED";
  if (status.IsUnavailable()) code = "OVERLOADED";
  if (status.IsNotFound()) code = "NOT_FOUND";
  if (status.IsIOError()) code = "IO_ERROR";
  return ErrorResponse(code, status.message());
}

JsonValue OkResponse(JsonValue::Object result) {
  JsonValue::Object response;
  response["ok"] = true;
  response["result"] = JsonValue(std::move(result));
  return JsonValue(std::move(response));
}

JsonValue TableToJson(const PeriodicityTable& table,
                      std::size_t max_entries_returned) {
  JsonValue::Array summaries;
  summaries.reserve(table.summaries().size());
  for (const PeriodSummary& summary : table.summaries()) {
    JsonValue::Object entry;
    entry["period"] = summary.period;
    entry["confidence"] = summary.best_confidence;
    entry["periodicities"] = summary.num_periodicities;
    entry["aggregate_only"] = summary.aggregate_only;
    summaries.push_back(JsonValue(std::move(entry)));
  }
  JsonValue::Array entries;
  const std::size_t limit =
      std::min(max_entries_returned, table.entries().size());
  entries.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const SymbolPeriodicity& hit = table.entries()[i];
    JsonValue::Object entry;
    entry["period"] = hit.period;
    entry["position"] = hit.position;
    entry["symbol"] = static_cast<std::size_t>(hit.symbol);
    entry["confidence"] = hit.confidence;
    entries.push_back(JsonValue(std::move(entry)));
  }
  JsonValue::Object result;
  result["summaries"] = JsonValue(std::move(summaries));
  result["entries"] = JsonValue(std::move(entries));
  result["entries_truncated"] =
      (table.entries().size() > limit) || table.truncated();
  result["partial"] = table.partial();
  return JsonValue(std::move(result));
}

JobQueue::Priority ParsePriority(const JsonValue& params) {
  const std::string name = params.GetString("priority", "normal");
  if (name == "high") return JobQueue::Priority::kHigh;
  if (name == "low") return JobQueue::Priority::kLow;
  return JobQueue::Priority::kNormal;
}

// --- Daemon ----------------------------------------------------------------

JsonValue Daemon::RunQueued(JobQueue::Priority priority,
                            std::function<JsonValue()> work) {
  // The connection thread blocks on its own job; concurrency and backlog
  // are bounded by the queue, which is where admission is decided.
  util::Mutex done_mutex;
  util::CondVar done_cv;
  bool done = false;
  JsonValue response;
  JobQueue::OverloadInfo overload;
  const Status admitted = queue_.TrySubmit(
      priority,
      [&] {
        JsonValue result = work();
        // Notify while holding the mutex: the waiter destroys done_cv the
        // moment it observes done, so an unlocked notify could touch a
        // dead condition variable.
        util::MutexLock lock(&done_mutex);
        response = std::move(result);
        done = true;
        done_cv.NotifyOne();
      },
      &overload);
  if (!admitted.ok()) {
    JsonValue rejection = StatusToResponse(admitted);
    JsonValue::Object& error =
        rejection.mutable_object()["error"].mutable_object();
    error["retry_after_ms"] =
        static_cast<std::size_t>(overload.retry_after.count());
    error["queue_depth"] = overload.queue_depth;
    error["draining"] = overload.draining;
    return rejection;
  }
  util::MutexLock lock(&done_mutex);
  while (!done) done_cv.Wait(done_mutex);
  return response;
}

JsonValue Daemon::HandlePing() {
  JsonValue::Object result;
  result["pong"] = true;
  return OkResponse(std::move(result));
}

JsonValue Daemon::HandleStats() {
  const JobQueue::Stats stats = queue_.GetStats();
  JsonValue::Object queue;
  queue["depth"] = stats.queue_depth;
  queue["running"] = stats.running;
  queue["accepted"] = stats.accepted;
  queue["rejected"] = stats.rejected;
  queue["completed"] = stats.completed;
  queue["latency_ewma_ms"] = stats.queue_latency_ewma_ms;
  queue["oldest_running_ms"] = stats.oldest_running_ms;
  queue["workers"] = queue_.num_workers();
  JsonValue::Object memory;
  memory["pool_limit"] = pool_.limit();
  memory["pool_used"] = pool_.used();
  memory["pool_high_water"] = pool_.high_water();
  JsonValue::Object result;
  result["queue"] = JsonValue(std::move(queue));
  result["memory"] = JsonValue(std::move(memory));
  {
    util::MutexLock lock(&sessions_mutex_);
    result["sessions"] = sessions_.size();
  }
  result["watchdog_cancels"] =
      watchdog_cancels_.load(std::memory_order_relaxed);
  result["draining"] = queue_.draining();
  return OkResponse(std::move(result));
}

JsonValue Daemon::HandleSleep(const JsonValue& params) {
  // Diagnostic: occupies one worker slot for `ms`, cancellable like a real
  // mine. Lets operators (and the e2e tests) probe admission control, the
  // watchdog and drain behavior with precisely-timed load.
  const auto ms = static_cast<std::int64_t>(params.GetNumber("ms", 0));
  if (ms < 0 || ms > 60000) {
    return ErrorResponse("INVALID_ARGUMENT",
                         "sleep: params.ms must be in [0, 60000]");
  }
  return RunQueued(ParsePriority(params), [this, ms]() {
    util::CancellationToken token;
    std::uint64_t flight_id = 0;
    {
      util::MutexLock lock(&flights_mutex_);
      flight_id = next_flight_id_++;
      flights_.emplace(flight_id,
                       FlightRecord{&token, std::chrono::steady_clock::now()});
    }
    const auto wake_at = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < wake_at && !token.Expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    {
      util::MutexLock lock(&flights_mutex_);
      flights_.erase(flight_id);
    }
    JsonValue::Object result;
    result["partial"] = token.Expired();
    return OkResponse(std::move(result));
  });
}

JsonValue Daemon::HandleMine(const JsonValue& params) {
  const std::string text = params.GetString("series", "");
  if (text.empty()) {
    return ErrorResponse("INVALID_ARGUMENT",
                         "mine: params.series (single-letter symbol string) "
                         "is required and must be non-empty");
  }
  MinerOptions options;
  options.threshold = params.GetNumber("threshold", options.threshold);
  options.min_period = static_cast<std::size_t>(
      params.GetNumber("min_period", 1));
  options.max_period = static_cast<std::size_t>(
      params.GetNumber("max_period", 0));
  options.min_pairs = static_cast<std::size_t>(
      params.GetNumber("min_pairs", 1));
  options.positions = params.GetBool("positions", true);
  const std::string engine = params.GetString("engine", "auto");
  if (engine == "exact") {
    options.engine = MinerEngine::kExact;
  } else if (engine == "fft") {
    options.engine = MinerEngine::kFft;
  } else if (engine != "auto") {
    return ErrorResponse("INVALID_ARGUMENT",
                         "mine: unknown engine '" + engine + "'");
  }
  // Per-request budget: the request may *lower* the server default, never
  // raise past it.
  const auto server_cap =
      static_cast<std::size_t>(config_.request_budget_bytes);
  auto request_cap = static_cast<std::size_t>(
      params.GetNumber("memory_budget_bytes",
                       static_cast<double>(server_cap)));
  if (server_cap != 0) {
    request_cap = request_cap == 0 ? server_cap
                                   : std::min(request_cap, server_cap);
  }
  options.memory_budget_bytes = request_cap;
  if (pool_.limit() != 0) options.memory_budget = &pool_;
  auto deadline_ms = static_cast<std::size_t>(params.GetNumber(
      "deadline_ms", static_cast<double>(config_.default_deadline_ms)));

  Result<SymbolSeries> series = SymbolSeries::FromString(text);
  if (!series.ok()) return StatusToResponse(series.status());

  // Advisory admission check before the queue: a request that cannot fit
  // even an *empty* pool is rejected immediately with the full estimate —
  // no queue slot, no allocation. (The engines still charge for real.)
  if (pool_.limit() != 0) {
    const MineMemoryEstimate estimate = EstimateMineMemory(
        series.value().size(), series.value().alphabet().size(), options);
    if (estimate.total_bytes() > pool_.limit()) {
      return ErrorResponse(
          "RESOURCE_EXHAUSTED",
          "mine rejected at admission: estimated peak memory " +
              estimate.ToString() + " exceeds the process pool of " +
              util::FormatBytes(pool_.limit()));
    }
  }

  const std::size_t max_entries_returned = static_cast<std::size_t>(
      params.GetNumber("max_entries_returned", 100));
  return RunQueued(ParsePriority(params), [this, series =
                                               std::move(series.value()),
                                           options, deadline_ms,
                                           max_entries_returned]() mutable {
    util::CancellationToken token;
    if (deadline_ms > 0) {
      token.SetTimeout(std::chrono::milliseconds(deadline_ms));
    }
    options.cancellation = &token;
    std::uint64_t flight_id = 0;
    {
      util::MutexLock lock(&flights_mutex_);
      flight_id = next_flight_id_++;
      flights_.emplace(flight_id,
                       FlightRecord{&token, std::chrono::steady_clock::now()});
    }
    const Result<MiningResult> mined = ObscureMiner(options).Mine(series);
    {
      util::MutexLock lock(&flights_mutex_);
      flights_.erase(flight_id);
    }
    if (!mined.ok()) return StatusToResponse(mined.status());
    JsonValue response = TableToJson(mined.value().periodicities,
                                     max_entries_returned);
    JsonValue::Object& result = response.mutable_object();
    result["n"] = mined.value().series_length;
    result["sigma"] = mined.value().alphabet_size;
    result["engine"] =
        mined.value().engine_used == MinerEngine::kExact ? "exact" : "fft";
    result["partial"] = mined.value().partial;
    return OkResponse(std::move(result));
  });
}

JsonValue Daemon::HandleStreamOpen(const JsonValue& params) {
  const std::string name = params.GetString("session", "");
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find("..") != std::string::npos) {
    return ErrorResponse("INVALID_ARGUMENT",
                         "stream_open: params.session must be a non-empty "
                         "name without '/' or '..'");
  }
  // Build the detector before the session exists: the fresh session is not
  // yet published in sessions_, but its detector member is still guarded, so
  // installation below happens under the (uncontended) session mutex.
  std::unique_ptr<StreamingPeriodDetector> detector;
  if (params.GetBool("resume", false)) {
    if (config_.checkpoint_dir.empty()) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_open: resume requires --checkpoint_dir");
    }
    Result<StreamingPeriodDetector> restored =
        LoadDetectorCheckpoint(CheckpointPath(name));
    if (!restored.ok()) return StatusToResponse(restored.status());
    detector = std::make_unique<StreamingPeriodDetector>(
        std::move(restored.value()));
  } else {
    const auto max_period = static_cast<std::size_t>(
        params.GetNumber("max_period", 0));
    const auto alphabet_size = static_cast<std::size_t>(
        params.GetNumber("alphabet_size", 0));
    if (max_period == 0 || alphabet_size == 0) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_open: params.max_period and "
                           "params.alphabet_size are required (or resume)");
    }
    StreamingPeriodDetector::Options options;
    options.max_period = max_period;
    options.block_size = static_cast<std::size_t>(
        params.GetNumber("block_size", 0));
    Result<StreamingPeriodDetector> created = StreamingPeriodDetector::Create(
        Alphabet::Latin(alphabet_size), options);
    if (!created.ok()) return StatusToResponse(created.status());
    detector = std::make_unique<StreamingPeriodDetector>(
        std::move(created.value()));
  }
  const std::size_t restored_size = detector->size();
  auto session = std::make_shared<StreamSession>();
  {
    util::MutexLock lock(&session->mutex);
    session->detector = std::move(detector);
  }
  {
    util::MutexLock lock(&sessions_mutex_);
    if (queue_.draining()) {
      return ErrorResponse("OVERLOADED", "daemon is draining for shutdown");
    }
    const auto [it, inserted] = sessions_.emplace(name, std::move(session));
    if (!inserted) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_open: session '" + name +
                               "' is already open");
    }
  }
  JsonValue::Object result;
  result["session"] = name;
  result["size"] = restored_size;
  return OkResponse(std::move(result));
}

std::shared_ptr<StreamSession> Daemon::FindSession(const std::string& name) {
  util::MutexLock lock(&sessions_mutex_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

JsonValue Daemon::HandleStreamFeed(const JsonValue& params) {
  const std::string name = params.GetString("session", "");
  const std::string symbols = params.GetString("symbols", "");
  std::shared_ptr<StreamSession> session =
      FindSession(name);
  if (session == nullptr) {
    return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
  }
  util::MutexLock lock(&session->mutex);
  const Alphabet& alphabet = session->detector->alphabet();
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const Result<SymbolId> id =
        alphabet.Find(std::string(1, symbols[i]));
    if (!id.ok()) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_feed: symbol '" +
                               std::string(1, symbols[i]) + "' at offset " +
                               std::to_string(i) +
                               " is outside the session alphabet (symbols "
                               "before it were consumed)");
    }
    session->detector->Append(id.value());
  }
  JsonValue::Object result;
  result["consumed"] = symbols.size();
  result["size"] = session->detector->size();
  return OkResponse(std::move(result));
}

JsonValue Daemon::HandleStreamDetect(const JsonValue& params) {
  const std::string name = params.GetString("session", "");
  std::shared_ptr<StreamSession> session =
      FindSession(name);
  if (session == nullptr) {
    return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
  }
  const double threshold = params.GetNumber("threshold", 0.5);
  const auto min_period = static_cast<std::size_t>(
      params.GetNumber("min_period", 1));
  const auto min_pairs = static_cast<std::size_t>(
      params.GetNumber("min_pairs", 1));
  return RunQueued(ParsePriority(params), [session, threshold, min_period,
                                           min_pairs]() {
    util::MutexLock lock(&session->mutex);
    const PeriodicityTable table =
        session->detector->Detect(threshold, min_period, min_pairs);
    JsonValue response = TableToJson(table, 0);
    response.mutable_object()["size"] = session->detector->size();
    return OkResponse(std::move(response.mutable_object()));
  });
}

JsonValue Daemon::HandleStreamClose(const JsonValue& params) {
  const std::string name = params.GetString("session", "");
  std::shared_ptr<StreamSession> session;
  {
    util::MutexLock lock(&sessions_mutex_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  JsonValue::Object result;
  result["session"] = name;
  util::MutexLock lock(&session->mutex);
  if (params.GetBool("checkpoint", false)) {
    if (config_.checkpoint_dir.empty()) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_close: checkpoint requires "
                           "--checkpoint_dir");
    }
    if (Status saved =
            SaveCheckpoint(*session->detector, CheckpointPath(name));
        !saved.ok()) {
      return StatusToResponse(saved);
    }
    result["checkpoint"] = CheckpointPath(name);
  }
  result["size"] = session->detector->size();
  return OkResponse(std::move(result));
}

JsonValue Daemon::Dispatch(const JsonValue& request) {
  if (!request.is_object()) {
    return ErrorResponse("INVALID_ARGUMENT", "request must be a JSON object");
  }
  const std::string method = request.GetString("method", "");
  const JsonValue* params_ptr = request.Find("params");
  const JsonValue params =
      params_ptr != nullptr ? *params_ptr : JsonValue(JsonValue::Object{});

  JsonValue response;
  if (method == "ping") {
    response = HandlePing();
  } else if (method == "stats") {
    response = HandleStats();
  } else if (method == "sleep") {
    response = HandleSleep(params);
  } else if (method == "mine") {
    response = HandleMine(params);
  } else if (method == "stream_open") {
    response = HandleStreamOpen(params);
  } else if (method == "stream_feed") {
    response = HandleStreamFeed(params);
  } else if (method == "stream_detect") {
    response = HandleStreamDetect(params);
  } else if (method == "stream_close") {
    response = HandleStreamClose(params);
  } else {
    response = ErrorResponse("INVALID_ARGUMENT",
                             "unknown method '" + method + "'");
  }
  // Echo the request id so clients can pipeline.
  if (const JsonValue* id = request.Find("id"); id != nullptr) {
    response.mutable_object()["id"] = *id;
  }
  return response;
}

void Daemon::ServeConnection(FdHandle fd) {
  {
    util::MutexLock lock(&threads_mutex_);
    connection_fds_.insert(fd.get());
  }
  const auto unregister = [this, raw = fd.get()] {
    util::MutexLock lock(&threads_mutex_);
    connection_fds_.erase(raw);
  };
  LineReader reader(fd.get(),
                    static_cast<std::size_t>(config_.max_request_bytes));
  while (!g_shutdown.load(std::memory_order_relaxed)) {
    if (Status injected = util::FaultInjector::Check("server/read");
        !injected.ok()) {
      // An injected read failure behaves like a broken peer: drop the
      // connection. The client sees EOF and retries; no partial state leaks.
      break;
    }
    Result<std::string> line = reader.Next();
    if (!line.ok()) break;  // EOF or read error: connection is done
    if (line.value().empty()) continue;
    JsonValue response;
    Result<JsonValue> request = JsonValue::Parse(line.value());
    if (!request.ok()) {
      response = ErrorResponse("INVALID_ARGUMENT",
                               "bad request JSON: " +
                                   request.status().message());
    } else {
      response = Dispatch(request.value());
    }
    if (Status injected = util::FaultInjector::Check("server/write");
        !injected.ok()) {
      break;
    }
    if (!SendLine(fd.get(), response.Dump()).ok()) break;
  }
  unregister();
}

void Daemon::WatchdogLoop() {
  while (!g_shutdown.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.watchdog_interval_ms));
    if (config_.wedge_timeout_ms <= 0) continue;
    const auto now = std::chrono::steady_clock::now();
    util::MutexLock lock(&flights_mutex_);
    for (auto& [id, flight] : flights_) {
      const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - flight.start);
      if (age.count() >= config_.wedge_timeout_ms &&
          !flight.token->cancelled()) {
        // A wedged (or merely over-budget) job: cancel cooperatively. The
        // engine stops at its next stage boundary and returns a partial
        // result; the worker slot comes back.
        flight.token->RequestCancel();
        watchdog_cancels_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "periodicad: watchdog cancelled job %llu after %lld ms\n",
                     static_cast<unsigned long long>(id),
                     static_cast<long long>(age.count()));
      }
    }
  }
}

void Daemon::CheckpointSessionsForDrain() {
  std::map<std::string, std::shared_ptr<StreamSession>> sessions;
  {
    util::MutexLock lock(&sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& [name, session] : sessions) {
    util::MutexLock lock(&session->mutex);
    if (config_.checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "periodicad: dropping session '%s' (%zu symbols): no "
                   "--checkpoint_dir\n",
                   name.c_str(), session->detector->size());
      continue;
    }
    const Status saved =
        SaveCheckpoint(*session->detector, CheckpointPath(name));
    if (saved.ok()) {
      std::fprintf(stderr, "periodicad: checkpointed session '%s' to %s\n",
                   name.c_str(), CheckpointPath(name).c_str());
    } else {
      std::fprintf(stderr,
                   "periodicad: FAILED to checkpoint session '%s': %s\n",
                   name.c_str(), saved.ToString().c_str());
    }
  }
}

Status Daemon::Run() {
  Result<FdHandle> listener = ListenUnix(config_.socket_path);
  PERIODICA_RETURN_NOT_OK(listener.status());
  std::fprintf(stderr, "periodicad: serving on %s (%zu workers, depth %lld)\n",
               config_.socket_path.c_str(), queue_.num_workers(),
               static_cast<long long>(config_.max_queue_depth));

  std::thread watchdog([this] { WatchdogLoop(); });

  while (!g_shutdown.load(std::memory_order_relaxed)) {
    // Wait for a connection or the shutdown pipe.
    fd_set fds;
    FD_ZERO(&fds);
    FD_SET(listener.value().get(), &fds);
    FD_SET(g_wake_pipe[0], &fds);
    const int nfds = std::max(listener.value().get(), g_wake_pipe[0]) + 1;
    const int ready = ::select(nfds, &fds, nullptr, nullptr, nullptr);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (g_shutdown.load(std::memory_order_relaxed)) break;
    if (!FD_ISSET(listener.value().get(), &fds)) continue;
    if (Status injected = util::FaultInjector::Check("server/accept");
        !injected.ok()) {
      // Injected accept failure: take and drop the pending connection, as a
      // transient accept(2) error would.
      const int dropped = ::accept(listener.value().get(), nullptr, nullptr);
      if (dropped >= 0) ::close(dropped);
      continue;
    }
    const int client = ::accept(listener.value().get(), nullptr, nullptr);
    if (client < 0) continue;
    util::MutexLock lock(&threads_mutex_);
    connection_threads_.emplace_back(
        [this, fd = FdHandle(client)]() mutable {
          ServeConnection(std::move(fd));
        });
  }

  // Graceful drain: stop admitting (queue rejects with draining=true for
  // any request that still races in), finish the backlog, checkpoint every
  // open streaming session, then leave.
  std::fprintf(stderr, "periodicad: draining...\n");
  listener.value().Close();
  ::unlink(config_.socket_path.c_str());
  queue_.Drain();  // in-flight jobs finish; their responses are delivered
  CheckpointSessionsForDrain();
  {
    // Unblock connection threads parked in recv, then join them. The joins
    // run outside the lock: exiting threads need it to unregister.
    std::vector<std::thread> threads;
    {
      util::MutexLock lock(&threads_mutex_);
      for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
      threads.swap(connection_threads_);
    }
    for (std::thread& thread : threads) thread.join();
  }
  watchdog.join();
  std::fprintf(stderr, "periodicad: drained, exiting\n");
  return Status::OK();
}

// --- Fault arming ----------------------------------------------------------

/// Parses "--faults site:nth[:repeat],..." into armed ScopedFaults that live
/// for the process lifetime (the soak's knob for exercising the
/// server/accept, server/read, server/write and job_queue/enqueue sites in
/// the shipped binary).
Status ArmFaults(const std::string& spec,
                 std::vector<std::unique_ptr<util::ScopedFault>>* armed) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("--faults item '" + item +
                                     "' is not site:nth[:repeat]");
    }
    const std::string site = item.substr(0, colon);
    std::string rest = item.substr(colon + 1);
    bool repeat = false;
    if (const std::size_t colon2 = rest.find(':');
        colon2 != std::string::npos) {
      repeat = rest.substr(colon2 + 1) == "repeat";
      rest = rest.substr(0, colon2);
    }
    char* parse_end = nullptr;
    const unsigned long long nth = std::strtoull(rest.c_str(), &parse_end, 10);
    if (parse_end == rest.c_str() || *parse_end != '\0' || nth == 0) {
      return Status::InvalidArgument("--faults item '" + item +
                                     "' has a bad hit number");
    }
    armed->push_back(std::make_unique<util::ScopedFault>(
        site, Status::IOError("injected fault at " + site), nth, repeat));
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  DaemonConfig config;
  FlagSet flags("periodicad");
  flags.AddString("socket", &config.socket_path,
                  "Unix socket path to serve on (required)");
  flags.AddString("checkpoint_dir", &config.checkpoint_dir,
                  "directory for streaming-session checkpoints (drain "
                  "target; empty disables checkpointing)");
  flags.AddInt64("workers", &config.workers,
                 "mining worker threads (0 = hardware concurrency)");
  flags.AddInt64("max_queue_depth", &config.max_queue_depth,
                 "max jobs waiting before OVERLOADED rejection");
  flags.AddDouble("max_queue_latency_ms", &config.max_queue_latency_ms,
                  "queue-wait EWMA limit for admission (0 = depth only)");
  flags.AddInt64("memory_budget_bytes", &config.memory_budget_bytes,
                 "process-global mining memory pool (0 = unlimited)");
  flags.AddInt64("request_budget_bytes", &config.request_budget_bytes,
                 "per-request memory cap; requests may lower but not raise "
                 "it (0 = unlimited)");
  flags.AddInt64("default_deadline_ms", &config.default_deadline_ms,
                 "deadline for requests that do not set one (0 = none)");
  flags.AddInt64("wedge_timeout_ms", &config.wedge_timeout_ms,
                 "watchdog cancels mining jobs running longer than this "
                 "(0 = never)");
  flags.AddInt64("watchdog_interval_ms", &config.watchdog_interval_ms,
                 "watchdog scan interval");
  flags.AddInt64("max_request_bytes", &config.max_request_bytes,
                 "max bytes in one request line");
  flags.AddString("faults", &config.faults,
                  "fault sites to arm: site:nth[:repeat],... (e.g. "
                  "server/read:3:repeat)");
  flags.SetEpilog(
      "Serves newline-delimited JSON requests over a Unix socket; see\n"
      "docs/SERVING.md for the protocol, overload semantics and capacity\n"
      "planning. SIGTERM drains gracefully: admission stops, in-flight\n"
      "jobs finish, streaming sessions checkpoint to --checkpoint_dir,\n"
      "exit code 0.");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "periodicad: %s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (config.socket_path.empty()) {
    std::fprintf(stderr, "periodicad: --socket is required\n%s",
                 flags.Usage().c_str());
    return 2;
  }

  std::vector<std::unique_ptr<util::ScopedFault>> armed_faults;
  if (const Status status = ArmFaults(config.faults, &armed_faults);
      !status.ok()) {
    std::fprintf(stderr, "periodicad: %s\n", status.ToString().c_str());
    return 2;
  }

  if (::pipe(g_wake_pipe) != 0) {
    std::fprintf(stderr, "periodicad: pipe() failed\n");
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  Daemon daemon(std::move(config));
  if (const Status status = daemon.Run(); !status.ok()) {
    std::fprintf(stderr, "periodicad: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace periodica::tools

int main(int argc, char** argv) { return periodica::tools::Main(argc, argv); }
