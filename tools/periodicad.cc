// periodicad: a long-running periodicity-mining service over a local Unix
// socket, speaking newline-delimited JSON (docs/SERVING.md).
//
// Architecture (the multi-tenant stream hub):
//
//  * one epoll event loop (util::EventLoop) multiplexes every connection on
//    a single thread — connections are state machines (LineBuffer in,
//    buffered response out), not threads, so the daemon's thread count is
//    O(worker pool), never O(connections);
//  * CPU-bound work (mine, stream_detect, sleep) is dispatched to a bounded
//    util::JobQueue; the completion hands its response back to the loop via
//    Post(), which writes it out when the socket is writable;
//  * streaming-session state lives in a serve::SessionTable keyed by
//    (tenant, session): slab-allocated control blocks, per-tenant
//    util::MemoryBudget quotas, and fair-share LRU eviction of idle
//    sessions to bit-exact checkpoints (thawed transparently on next use);
//  * admission control: past queue depth/latency limits the request is
//    *rejected* with a structured OVERLOADED error carrying a retry-after
//    hint; past tenant quotas with nothing evictable it is rejected with
//    QUOTA_EXCEEDED, same shape;
//  * deadlines and a watchdog: every mining job runs under a
//    CancellationToken; a watchdog thread cancels jobs that exceed the
//    wedge timeout, turning a hung worker into a partial result;
//  * graceful drain: SIGTERM/SIGINT stop admission, finish in-flight jobs
//    and flush their responses, checkpoint every open streaming session to
//    --checkpoint_dir (core/checkpoint.h), and exit 0.
//
//  * durability (--store_dir): a log-structured KV store (store/kv_store.h)
//    holds session checkpoints and a mine result cache keyed by
//    ("mine", tenant, series_id, config-hash); recovery replays the WAL and
//    scrubs segments at startup, so sessions thaw bit-identically after a
//    crash and repeat mine queries are served from the store.
//
//  * multi-node (--tcp_port): the same protocol served over TCP beside the
//    Unix socket, so periodica_router can consistent-hash sessions across
//    N shard daemons. With --checkpoint_each_feed every acked feed is
//    durable in the (shared) checkpoint backend, which is what lets a
//    router re-route a session to a peer shard mid-stream and replay the
//    one ambiguous in-flight feed idempotently (params.offset).
//
// Fault-injection sites "server/accept", "server/read", "server/write",
// "tcp/accept", "tcp/read", "tcp/write", "event_loop/poll" and the store/*
// family (armed via --faults) let the soak test walk the failure edges of
// the exact binary that serves real traffic.

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "periodica/core/memory_estimate.h"
#include "periodica/core/miner.h"
#include "periodica/core/streaming_detector.h"
#include "periodica/serve/session_table.h"
#include "periodica/series/series.h"
#include "periodica/store/kv_store.h"
#include "periodica/util/cancellation.h"
#include "periodica/util/crc32.h"
#include "periodica/util/event_loop.h"
#include "periodica/util/fault_injector.h"
#include "periodica/util/flags.h"
#include "periodica/util/job_queue.h"
#include "periodica/util/json.h"
#include "periodica/util/memory_budget.h"
#include "periodica/util/sync.h"
#include "periodica/util/tcp.h"
#include "unix_socket.h"

namespace periodica::tools {
namespace {

using serve::SessionTable;
using util::EventLoop;
using util::JobQueue;
using util::JsonValue;

/// Set from the signal handler, polled by the watchdog; the loop itself is
/// woken through g_wake_pipe (registered in the event loop).
///
/// Ordering: relaxed. A one-way level-triggered flag: loops that read it a
/// beat late run one extra iteration and then exit, which shutdown
/// tolerates by construction (drain waits for the queue and joins every
/// thread). No data is published through this flag — and a signal handler
/// could not establish a happens-before edge anyway.
std::atomic<bool> g_shutdown{false};
int g_wake_pipe[2] = {-1, -1};

void HandleShutdownSignal(int /*signo*/) {
  g_shutdown.store(true, std::memory_order_relaxed);
  // Wake the event loop; write(2) is async-signal-safe.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t ignored = ::write(g_wake_pipe[1], &byte, 1);
}

struct DaemonConfig {
  std::string socket_path;
  std::string tcp_host = "127.0.0.1";
  std::int64_t tcp_port = -1;  ///< -1 = no TCP listener; 0 = ephemeral port
  std::string checkpoint_dir;
  std::string store_dir;  ///< durable KvStore root; "" disables the store
  std::int64_t store_wal_rotate_bytes = 0;  ///< 0 = library default
  /// Opened in Main() (so recovery failures abort startup with a clear
  /// message), owned there, borrowed by the daemon for its whole life.
  store::KvStore* store = nullptr;
  std::int64_t workers = 1;
  std::int64_t max_queue_depth = 16;
  double max_queue_latency_ms = 0.0;
  std::int64_t memory_budget_bytes = 0;   // mining pool; 0 = unlimited
  std::int64_t request_budget_bytes = 0;  // per-request default cap
  std::int64_t session_budget_bytes = 0;  // resident sessions, all tenants
  std::int64_t tenant_budget_bytes = 0;   // resident sessions, per tenant
  std::int64_t max_sessions_per_tenant = 0;
  std::int64_t quota_retry_after_ms = 100;
  std::int64_t default_deadline_ms = 0;
  std::int64_t wedge_timeout_ms = 0;  // watchdog cancel threshold; 0 = off
  std::int64_t watchdog_interval_ms = 250;
  std::int64_t max_request_bytes = 64 << 20;
  /// Persist a session checkpoint after every stream_open/stream_feed, so a
  /// peer shard sharing the checkpoint backend can thaw the session at the
  /// last acked symbol (live migration). A feed is acked only after its
  /// checkpoint landed.
  bool checkpoint_each_feed = false;
  std::int64_t mine_cache_ttl_s = 0;      ///< 0 = cache entries never expire
  std::int64_t mine_cache_max_bytes = 0;  ///< 0 = no size bound
  std::string faults;  // "site:nth[:repeat],..." armed for the process life
};

/// One client connection as event-loop state: framed input, buffered
/// output, and a serial-processing flag. Loop-confined — only the loop
/// thread touches a Connection (job completions come back via Post).
struct Connection {
  Connection(FdHandle fd_in, std::size_t max_line, bool tcp_in)
      : fd(std::move(fd_in)), in(max_line), tcp(tcp_in) {}

  FdHandle fd;
  LineBuffer in;
  /// Arrived via the TCP listener: its I/O edges check the tcp/read and
  /// tcp/write fault sites instead of server/read and server/write.
  const bool tcp;
  std::string out;             ///< undelivered response bytes
  std::size_t out_offset = 0;  ///< prefix of `out` already sent
  /// A request is in flight (possibly on a worker); the next pipelined
  /// line is not parsed until its response has been fully flushed — the
  /// same serial-per-connection semantics the thread-per-connection daemon
  /// had.
  bool busy = false;
  bool saw_eof = false;  ///< peer half-closed; finish the backlog, then close
  bool closed = false;   ///< unregistered; drop any late job completion
};

/// Per-tenant request counters (stats surface). Loop-confined.
struct TenantCounters {
  std::uint64_t opens = 0;
  std::uint64_t feeds = 0;
  std::uint64_t symbols = 0;
  std::uint64_t detects = 0;
  std::uint64_t closes = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config)
      : config_(std::move(config)),
        pool_(static_cast<std::size_t>(
            std::max<std::int64_t>(0, config_.memory_budget_bytes))),
        queue_(MakeQueueOptions(config_)),
        table_(MakeTableOptions(config_)) {}

  Status Run();

 private:
  static JobQueue::Options MakeQueueOptions(const DaemonConfig& config) {
    JobQueue::Options options;
    options.num_threads = static_cast<std::size_t>(config.workers);
    options.max_queue_depth =
        static_cast<std::size_t>(config.max_queue_depth);
    options.max_queue_latency_ms = config.max_queue_latency_ms;
    return options;
  }

  static SessionTable::Options MakeTableOptions(const DaemonConfig& config) {
    SessionTable::Options options;
    options.checkpoint_dir = config.checkpoint_dir;
    options.store = config.store;
    options.global_budget_bytes = static_cast<std::size_t>(
        std::max<std::int64_t>(0, config.session_budget_bytes));
    options.tenant_budget_bytes = static_cast<std::size_t>(
        std::max<std::int64_t>(0, config.tenant_budget_bytes));
    options.max_sessions_per_tenant = static_cast<std::size_t>(
        std::max<std::int64_t>(0, config.max_sessions_per_tenant));
    options.quota_retry_after_ms = config.quota_retry_after_ms;
    return options;
  }

  // Event-loop callbacks (loop thread).
  void OnAcceptable();
  void OnTcpAcceptable();
  void RegisterConnection(FdHandle fd, bool tcp);
  void OnReadable(const std::shared_ptr<Connection>& conn);
  void OnWritable(const std::shared_ptr<Connection>& conn);
  void OnWakePipe();

  // Connection state machine (loop thread).
  void ProcessNextLine(const std::shared_ptr<Connection>& conn);
  void HandleRequestLine(const std::shared_ptr<Connection>& conn,
                         const std::string& line);
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       JsonValue response);
  void FlushOut(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  // Request handlers. Immediate handlers run wholly on the loop thread and
  // return the response; queued handlers return nullopt after dispatching
  // to the job queue (the completion posts the response back), or an
  // immediate error (validation, overload).
  JsonValue HandlePing();
  JsonValue HandleStats();
  JsonValue HandleStreamOpen(const JsonValue& params);
  JsonValue HandleStreamFeed(const JsonValue& params);
  JsonValue HandleStreamClose(const JsonValue& params);
  JsonValue HandleStreamDiscard(const JsonValue& params);
  std::optional<JsonValue> HandleSleep(
      const std::shared_ptr<Connection>& conn, const JsonValue& params,
      const JsonValue* id);
  std::optional<JsonValue> HandleMine(
      const std::shared_ptr<Connection>& conn, const JsonValue& params,
      const JsonValue* id);
  std::optional<JsonValue> HandleStreamDetect(
      const std::shared_ptr<Connection>& conn, const JsonValue& params,
      const JsonValue* id);

  /// Submits `work` to the job queue; the completion posts the response
  /// (with `id` echoed) back to the loop, which writes it to `conn` if the
  /// connection is still alive. Returns the structured OVERLOADED (or
  /// draining) rejection when admission fails, nullopt when queued.
  std::optional<JsonValue> StartQueued(
      const std::shared_ptr<Connection>& conn, JobQueue::Priority priority,
      std::function<JsonValue()> work, const JsonValue* id);

  // Drain sequence (loop thread unless noted).
  void BeginDrain();
  void MaybeFinishDrain();
  void CheckpointSessionsForDrain();

  void WatchdogLoop();

  // Mine-cache bounding (--mine_cache_ttl_s / --mine_cache_max_bytes).
  [[nodiscard]] bool MineCacheBounded() const {
    return config_.mine_cache_ttl_s > 0 || config_.mine_cache_max_bytes > 0;
  }
  /// Wall-clock milliseconds (cache records carry absolute timestamps so
  /// TTLs survive restarts).
  static std::int64_t WallMs() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
  /// Rebuilds the in-memory cache index from the store at startup (before
  /// the loop thread serves), evicting anything already over budget.
  void LoadMineCacheIndex();
  /// Records a fresh cache write and enforces the size bound (loop thread).
  void OnMineCachePut(const std::string& key, std::size_t bytes,
                      std::int64_t stored_ms);
  /// Tombstones `key` in the store and forgets it in the index.
  void DropMineCacheKey(const std::string& key);
  /// Evicts oldest-written entries until under --mine_cache_max_bytes.
  void EnforceMineCacheBytes();

  TenantCounters& CountersFor(const std::string& tenant) {
    return tenant_counters_[tenant];
  }

  /// Session checkpoints have somewhere durable to go (store or files).
  [[nodiscard]] bool Durable() const {
    return config_.store != nullptr || !config_.checkpoint_dir.empty();
  }

  const DaemonConfig config_;  ///< immutable after construction
  util::MemoryBudget pool_;  // lint: unguarded(pool_): internally atomic
  JobQueue queue_;           // lint: unguarded(queue_): has its own mutex
  SessionTable table_;       // lint: unguarded(table_): has its own mutex

  // The event loop and everything it confines. The loop_ pointer itself is
  // set once in Run() before any other thread exists; Post() is its
  // thread-safe entry point. lint: unguarded(loop_): set before threads start
  std::unique_ptr<EventLoop> loop_;
  /// lint: unguarded(listener_): loop-confined
  FdHandle listener_;
  /// TCP listener (--tcp_port); invalid when TCP serving is off.
  /// lint: unguarded(tcp_listener_): loop-confined
  FdHandle tcp_listener_;
  /// Open connections by fd. lint: unguarded(connections_): loop-confined
  std::map<int, std::shared_ptr<Connection>> connections_;
  /// lint: unguarded(tenant_counters_): loop-confined
  std::map<std::string, TenantCounters> tenant_counters_;
  /// Result-cache traffic for `mine` requests carrying a series_id.
  /// lint: unguarded(mine_cache_hits_): loop-confined
  std::uint64_t mine_cache_hits_ = 0;
  /// lint: unguarded(mine_cache_misses_): loop-confined
  std::uint64_t mine_cache_misses_ = 0;
  /// The bounded cache's view of its own contents: key -> (record bytes,
  /// written-at wall ms). Workers write records; the index is maintained on
  /// the loop thread via Post, like every other counter here.
  struct MineCacheEntry {
    std::size_t bytes = 0;
    std::int64_t stored_ms = 0;
  };
  /// lint: unguarded(mine_cache_index_): loop-confined
  std::map<std::string, MineCacheEntry> mine_cache_index_;
  /// lint: unguarded(mine_cache_bytes_): loop-confined
  std::size_t mine_cache_bytes_ = 0;
  /// Size-bound evictions. lint: unguarded(mine_cache_evictions_): loop-confined
  std::uint64_t mine_cache_evictions_ = 0;
  /// TTL expiries. lint: unguarded(mine_cache_expired_): loop-confined
  std::uint64_t mine_cache_expired_ = 0;
  /// lint: unguarded(draining_): loop-confined
  bool draining_ = false;
  /// Set by a task the drain thread posts after queue_.Drain() returns.
  /// lint: unguarded(drain_queue_done_): loop-confined
  bool drain_queue_done_ = false;
  /// lint: unguarded(drain_done_): loop-confined
  bool drain_done_ = false;
  /// Runs queue_.Drain() off-loop so completions can still flush through
  /// the live loop. Created and joined by the loop thread (join happens
  /// after Run() returns). lint: unguarded(drain_thread_): loop-confined
  std::thread drain_thread_;

  /// In-flight mining jobs, for the watchdog: id -> (token, start).
  struct FlightRecord {
    util::CancellationToken* token;
    std::chrono::steady_clock::time_point start;
  };
  util::Mutex flights_mutex_;
  std::map<std::uint64_t, FlightRecord> flights_
      PERIODICA_GUARDED_BY(flights_mutex_);
  std::uint64_t next_flight_id_ PERIODICA_GUARDED_BY(flights_mutex_) = 0;
  /// Jobs the watchdog has ever cancelled (surfaced in `stats`).
  ///
  /// Ordering: relaxed — monotone statistic; the cancellation itself goes
  /// through CancellationToken, not through this counter.
  std::atomic<std::uint64_t> watchdog_cancels_{0};
};

// --- JSON response helpers -------------------------------------------------

JsonValue ErrorResponse(const std::string& code, const std::string& message) {
  JsonValue::Object error;
  error["code"] = code;
  error["message"] = message;
  JsonValue::Object response;
  response["ok"] = false;
  response["error"] = JsonValue(std::move(error));
  return JsonValue(std::move(response));
}

JsonValue StatusToResponse(const Status& status) {
  std::string code = "INTERNAL";
  if (status.IsInvalidArgument()) code = "INVALID_ARGUMENT";
  if (status.IsResourceExhausted()) code = "RESOURCE_EXHAUSTED";
  if (status.IsUnavailable()) code = "OVERLOADED";
  if (status.IsNotFound()) code = "NOT_FOUND";
  if (status.IsIOError()) code = "IO_ERROR";
  return ErrorResponse(code, status.message());
}

/// Maps a SessionTable failure to the wire: quota rejections become the
/// structured QUOTA_EXCEEDED error with a retry hint, everything else goes
/// through the generic status mapping.
JsonValue TableStatusToResponse(const Status& status,
                                const SessionTable::Rejection& rejection) {
  if (!rejection.quota_exceeded) return StatusToResponse(status);
  JsonValue response = ErrorResponse("QUOTA_EXCEEDED", status.message());
  JsonValue::Object& error =
      response.mutable_object()["error"].mutable_object();
  error["retry_after_ms"] =
      static_cast<std::size_t>(rejection.retry_after_ms);
  error["tenant"] = rejection.tenant;
  return response;
}

JsonValue OkResponse(JsonValue::Object result) {
  JsonValue::Object response;
  response["ok"] = true;
  response["result"] = JsonValue(std::move(result));
  return JsonValue(std::move(response));
}

JsonValue TableToJson(const PeriodicityTable& table,
                      std::size_t max_entries_returned) {
  JsonValue::Array summaries;
  summaries.reserve(table.summaries().size());
  for (const PeriodSummary& summary : table.summaries()) {
    JsonValue::Object entry;
    entry["period"] = summary.period;
    entry["confidence"] = summary.best_confidence;
    entry["periodicities"] = summary.num_periodicities;
    entry["aggregate_only"] = summary.aggregate_only;
    summaries.push_back(JsonValue(std::move(entry)));
  }
  JsonValue::Array entries;
  const std::size_t limit =
      std::min(max_entries_returned, table.entries().size());
  entries.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const SymbolPeriodicity& hit = table.entries()[i];
    JsonValue::Object entry;
    entry["period"] = hit.period;
    entry["position"] = hit.position;
    entry["symbol"] = static_cast<std::size_t>(hit.symbol);
    entry["confidence"] = hit.confidence;
    entries.push_back(JsonValue(std::move(entry)));
  }
  JsonValue::Object result;
  result["summaries"] = JsonValue(std::move(summaries));
  result["entries"] = JsonValue(std::move(entries));
  result["entries_truncated"] =
      (table.entries().size() > limit) || table.truncated();
  result["partial"] = table.partial();
  return JsonValue(std::move(result));
}

JobQueue::Priority ParsePriority(const JsonValue& params) {
  const std::string name = params.GetString("priority", "normal");
  if (name == "high") return JobQueue::Priority::kHigh;
  if (name == "low") return JobQueue::Priority::kLow;
  return JobQueue::Priority::kNormal;
}

/// The tenant a request acts for: the optional "tenant" param, defaulting
/// to the shared "default" tenant (whose checkpoint paths keep the
/// pre-tenant layout).
std::string RequestTenant(const JsonValue& params) {
  std::string tenant = params.GetString("tenant", "default");
  return tenant.empty() ? "default" : tenant;
}

// --- Event-loop plumbing ---------------------------------------------------

void Daemon::OnAcceptable() {
  while (true) {
    if (Status injected = util::FaultInjector::Check("server/accept");
        !injected.ok()) {
      // Injected accept failure: take and drop the pending connection, as a
      // transient accept(2) error would.
      const int dropped = ::accept(listener_.get(), nullptr, nullptr);
      if (dropped >= 0) ::close(dropped);
      continue;
    }
    const int client = ::accept(listener_.get(), nullptr, nullptr);
    if (client < 0) return;  // EAGAIN (drained) or transient failure
    FdHandle fd(client);
    if (!SetNonBlocking(fd.get()).ok()) continue;
    RegisterConnection(std::move(fd), /*tcp=*/false);
  }
}

void Daemon::OnTcpAcceptable() {
  while (true) {
    Result<FdHandle> accepted = util::TcpAccept(tcp_listener_.get());
    if (!accepted.ok()) {
      if (accepted.status().IsUnavailable()) return;  // backlog drained
      // Injected (tcp/accept) or transient failure: take and drop one
      // pending connection so a repeat-armed fault cannot spin the
      // level-triggered loop. The client sees a reset and retries.
      const int dropped = ::accept(tcp_listener_.get(), nullptr, nullptr);
      if (dropped >= 0) ::close(dropped);
      continue;
    }
    RegisterConnection(std::move(accepted.value()), /*tcp=*/true);
  }
}

void Daemon::RegisterConnection(FdHandle fd, bool tcp) {
  auto conn = std::make_shared<Connection>(
      std::move(fd), static_cast<std::size_t>(config_.max_request_bytes),
      tcp);
  EventLoop::Handler handler;
  handler.on_readable = [this, conn] { OnReadable(conn); };
  handler.on_writable = [this, conn] { OnWritable(conn); };
  const int raw = conn->fd.get();
  if (!loop_->Add(raw, /*want_read=*/true, /*want_write=*/false,
                  std::move(handler))
           .ok()) {
    return;  // conn (and its fd) die here
  }
  connections_.emplace(raw, std::move(conn));
}

void Daemon::OnReadable(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  if (Status injected = util::FaultInjector::Check(conn->tcp ? "tcp/read"
                                                             : "server/read");
      !injected.ok()) {
    // An injected read failure behaves like a broken peer: drop the
    // connection. The client sees EOF and retries; no partial state leaks.
    CloseConnection(conn);
    return;
  }
  const Result<bool> eof = DrainReadable(conn->fd.get(), &conn->in);
  if (!eof.ok()) {
    CloseConnection(conn);
    return;
  }
  if (eof.value()) {
    if (conn->in.mid_line()) {
      CloseConnection(conn);  // peer died mid-request
      return;
    }
    conn->saw_eof = true;
    // Drop read interest: a level-triggered EOF reports readable forever.
    (void)loop_->SetInterest(conn->fd.get(), /*want_read=*/false,
                             /*want_write=*/!conn->out.empty());
  }
  ProcessNextLine(conn);
}

void Daemon::OnWritable(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  FlushOut(conn);
  if (!conn->closed && conn->out.empty()) ProcessNextLine(conn);
}

void Daemon::OnWakePipe() {
  char drain[256];
  while (::read(g_wake_pipe[0], drain, sizeof(drain)) > 0) {
  }
  if (g_shutdown.load(std::memory_order_relaxed)) BeginDrain();
}

void Daemon::ProcessNextLine(const std::shared_ptr<Connection>& conn) {
  // Serial per connection: pull the next buffered request only when the
  // previous response is fully out. During drain, buffered-but-unparsed
  // requests are dropped (the thread-per-connection daemon did the same).
  while (!conn->busy && !conn->closed && !draining_) {
    const std::optional<std::string> line = conn->in.NextLine();
    if (!line.has_value()) break;
    if (line->empty()) continue;
    HandleRequestLine(conn, *line);
  }
  if (!conn->closed && conn->saw_eof && !conn->busy && conn->out.empty() &&
      !conn->in.mid_line()) {
    CloseConnection(conn);
  }
}

void Daemon::HandleRequestLine(const std::shared_ptr<Connection>& conn,
                               const std::string& line) {
  conn->busy = true;
  const Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    EnqueueResponse(
        conn, ErrorResponse("INVALID_ARGUMENT", "bad request JSON: " +
                                                    parsed.status().message()));
    return;
  }
  const JsonValue& request = parsed.value();
  if (!request.is_object()) {
    EnqueueResponse(
        conn, ErrorResponse("INVALID_ARGUMENT",
                            "request must be a JSON object"));
    return;
  }
  JsonValue id;
  bool has_id = false;
  if (const JsonValue* found = request.Find("id"); found != nullptr) {
    id = *found;
    has_id = true;
  }
  const std::string method = request.GetString("method", "");
  const JsonValue* params_ptr = request.Find("params");
  const JsonValue params =
      params_ptr != nullptr ? *params_ptr : JsonValue(JsonValue::Object{});

  std::optional<JsonValue> response;
  if (method == "ping") {
    response = HandlePing();
  } else if (method == "stats") {
    response = HandleStats();
  } else if (method == "sleep") {
    response = HandleSleep(conn, params, has_id ? &id : nullptr);
  } else if (method == "mine") {
    response = HandleMine(conn, params, has_id ? &id : nullptr);
  } else if (method == "stream_open") {
    response = HandleStreamOpen(params);
  } else if (method == "stream_feed") {
    response = HandleStreamFeed(params);
  } else if (method == "stream_detect") {
    response = HandleStreamDetect(conn, params, has_id ? &id : nullptr);
  } else if (method == "stream_close") {
    response = HandleStreamClose(params);
  } else if (method == "stream_discard") {
    response = HandleStreamDiscard(params);
  } else {
    response = ErrorResponse("INVALID_ARGUMENT",
                             "unknown method '" + method + "'");
  }
  if (response.has_value()) {
    // Echo the request id so clients can pipeline. (Queued handlers echo it
    // in their completion instead.)
    if (has_id) response->mutable_object()["id"] = id;
    EnqueueResponse(conn, *std::move(response));
  }
}

void Daemon::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                             JsonValue response) {
  if (conn->closed) return;
  if (Status injected = util::FaultInjector::Check(conn->tcp ? "tcp/write"
                                                             : "server/write");
      !injected.ok()) {
    CloseConnection(conn);
    return;
  }
  conn->out += response.Dump();
  conn->out.push_back('\n');
  FlushOut(conn);
}

void Daemon::FlushOut(const std::shared_ptr<Connection>& conn) {
  const Result<bool> sent =
      SendSome(conn->fd.get(), conn->out, &conn->out_offset);
  if (!sent.ok()) {
    CloseConnection(conn);
    return;
  }
  if (sent.value()) {
    conn->out.clear();
    conn->out_offset = 0;
    conn->busy = false;
    (void)loop_->SetInterest(conn->fd.get(), /*want_read=*/!conn->saw_eof,
                             /*want_write=*/false);
    if (draining_) MaybeFinishDrain();
  } else {
    // Short write: the kernel buffer is full. Wait for writability; reading
    // stays paused (the connection is serial anyway) so a slow consumer
    // exerts backpressure instead of growing `out` without bound.
    (void)loop_->SetInterest(conn->fd.get(), /*want_read=*/false,
                             /*want_write=*/true);
  }
}

void Daemon::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  loop_->Remove(conn->fd.get());
  connections_.erase(conn->fd.get());
  if (draining_) MaybeFinishDrain();
}

// --- Request handlers ------------------------------------------------------

std::optional<JsonValue> Daemon::StartQueued(
    const std::shared_ptr<Connection>& conn, JobQueue::Priority priority,
    std::function<JsonValue()> work, const JsonValue* id) {
  JobQueue::OverloadInfo overload;
  std::weak_ptr<Connection> weak = conn;
  JsonValue id_copy;
  const bool has_id = id != nullptr;
  if (has_id) id_copy = *id;
  const Status admitted = queue_.TrySubmit(
      priority,
      [this, weak = std::move(weak), work = std::move(work), id_copy,
       has_id] {
        JsonValue response = work();
        if (has_id) response.mutable_object()["id"] = id_copy;
        loop_->Post([this, weak, response = std::move(response)]() mutable {
          const std::shared_ptr<Connection> conn = weak.lock();
          if (conn == nullptr || conn->closed) return;  // peer went away
          EnqueueResponse(conn, std::move(response));
          if (!conn->closed && conn->out.empty()) ProcessNextLine(conn);
        });
      },
      &overload);
  if (!admitted.ok()) {
    // Every admission failure is retryable from the client's point of view:
    // the job never ran. That includes a job lost between admission and the
    // worker pool (the job_queue/enqueue fault site), which surfaces as a
    // structured rejection rather than leaking an internal I/O code.
    JsonValue rejection =
        (admitted.IsUnavailable() || admitted.IsResourceExhausted())
            ? StatusToResponse(admitted)
            : ErrorResponse("OVERLOADED",
                            "job not admitted: " + std::string(
                                admitted.message()));
    JsonValue::Object& error =
        rejection.mutable_object()["error"].mutable_object();
    error["retry_after_ms"] =
        static_cast<std::size_t>(overload.retry_after.count());
    error["queue_depth"] = overload.queue_depth;
    error["draining"] = overload.draining;
    return rejection;
  }
  return std::nullopt;
}

JsonValue Daemon::HandlePing() {
  JsonValue::Object result;
  result["pong"] = true;
  return OkResponse(std::move(result));
}

JsonValue Daemon::HandleStats() {
  const JobQueue::Stats stats = queue_.GetStats();
  JsonValue::Object queue;
  queue["depth"] = stats.queue_depth;
  queue["running"] = stats.running;
  queue["accepted"] = stats.accepted;
  queue["rejected"] = stats.rejected;
  queue["completed"] = stats.completed;
  queue["latency_ewma_ms"] = stats.queue_latency_ewma_ms;
  queue["oldest_running_ms"] = stats.oldest_running_ms;
  queue["workers"] = queue_.num_workers();
  JsonValue::Object memory;
  memory["pool_limit"] = pool_.limit();
  memory["pool_used"] = pool_.used();
  memory["pool_high_water"] = pool_.high_water();

  const SessionTable::Stats table = table_.GetStats();
  JsonValue::Object session_table;
  session_table["sessions"] = table.sessions;
  session_table["resident"] = table.resident;
  session_table["resident_bytes"] = table.resident_bytes;
  session_table["budget_limit"] = table.global_budget_limit;
  session_table["budget_high_water"] = table.global_high_water;
  session_table["evictions"] = table.evictions;
  session_table["thaws"] = table.thaws;
  session_table["quota_rejections"] = table.quota_rejections;
  session_table["slab_capacity"] = table.slab_capacity;
  session_table["slab_chunks"] = table.slab_chunks;
  {
    // Eviction-pressure view: how long resident idle sessions have sat
    // unused (buckets <1s, 1-10s, 10-60s, 60-600s, >=600s). Read with the
    // per-tenant eviction counts below.
    JsonValue::Array buckets;
    buckets.reserve(table.idle_age_buckets.size());
    for (const std::size_t count : table.idle_age_buckets) {
      buckets.push_back(JsonValue(count));
    }
    session_table["idle_age_buckets"] = JsonValue(std::move(buckets));
  }

  JsonValue::Object tenants;
  for (const auto& [name, tenant] : table.tenants) {
    JsonValue::Object entry;
    entry["sessions"] = tenant.sessions;
    entry["resident"] = tenant.resident;
    entry["resident_bytes"] = tenant.resident_bytes;
    entry["budget_limit"] = tenant.budget_limit;
    entry["opened"] = tenant.opened;
    entry["evictions"] = tenant.evictions;
    entry["thaws"] = tenant.thaws;
    entry["quota_rejections"] = tenant.quota_rejections;
    const auto counters = tenant_counters_.find(name);
    if (counters != tenant_counters_.end()) {
      entry["feeds"] = counters->second.feeds;
      entry["symbols"] = counters->second.symbols;
      entry["detects"] = counters->second.detects;
      entry["opens"] = counters->second.opens;
      entry["closes"] = counters->second.closes;
    }
    tenants[name] = JsonValue(std::move(entry));
  }

  JsonValue::Object event_loop;
  event_loop["polls"] = loop_->polls();
  event_loop["fds"] = loop_->num_fds();

  JsonValue::Object store;
  store["enabled"] = config_.store != nullptr;
  store["mine_cache_hits"] = mine_cache_hits_;
  store["mine_cache_misses"] = mine_cache_misses_;
  store["mine_cache_evictions"] = mine_cache_evictions_;
  store["mine_cache_expired"] = mine_cache_expired_;
  if (MineCacheBounded()) {
    store["mine_cache_entries"] = mine_cache_index_.size();
    store["mine_cache_bytes"] = mine_cache_bytes_;
  }
  if (config_.store != nullptr) {
    const store::KvStore::Stats kv = config_.store->GetStats();
    store["keys"] = kv.keys;
    store["wal_bytes"] = kv.wal_bytes;
    store["segments"] = kv.segments;
    store["puts"] = kv.puts;
    store["deletes"] = kv.deletes;
    store["gets"] = kv.gets;
    store["hits"] = kv.hits;
    store["rotations"] = kv.rotations;
    store["compactions"] = kv.compactions;
    store["recoveries"] = kv.recoveries;
    store["recovered_records"] = kv.recovered_records;
    store["torn_tail_bytes"] = kv.torn_tail_bytes;
    store["scrub_errors"] = kv.scrub_errors;
  }

  JsonValue::Object result;
  result["queue"] = JsonValue(std::move(queue));
  result["memory"] = JsonValue(std::move(memory));
  result["store"] = JsonValue(std::move(store));
  result["sessions"] = table.sessions;
  result["session_table"] = JsonValue(std::move(session_table));
  result["tenants"] = JsonValue(std::move(tenants));
  result["connections"] = connections_.size();
  result["event_loop"] = JsonValue(std::move(event_loop));
  result["watchdog_cancels"] =
      watchdog_cancels_.load(std::memory_order_relaxed);
  result["draining"] = queue_.draining();
  return OkResponse(std::move(result));
}

std::optional<JsonValue> Daemon::HandleSleep(
    const std::shared_ptr<Connection>& conn, const JsonValue& params,
    const JsonValue* id) {
  // Diagnostic: occupies one worker slot for `ms`, cancellable like a real
  // mine. Lets operators (and the e2e tests) probe admission control, the
  // watchdog and drain behavior with precisely-timed load.
  const auto ms = static_cast<std::int64_t>(params.GetNumber("ms", 0));
  if (ms < 0 || ms > 60000) {
    return ErrorResponse("INVALID_ARGUMENT",
                         "sleep: params.ms must be in [0, 60000]");
  }
  return StartQueued(conn, ParsePriority(params), [this, ms]() {
    util::CancellationToken token;
    std::uint64_t flight_id = 0;
    {
      util::MutexLock lock(&flights_mutex_);
      flight_id = next_flight_id_++;
      flights_.emplace(flight_id,
                       FlightRecord{&token, std::chrono::steady_clock::now()});
    }
    const auto wake_at = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < wake_at && !token.Expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    {
      util::MutexLock lock(&flights_mutex_);
      flights_.erase(flight_id);
    }
    JsonValue::Object result;
    result["partial"] = token.Expired();
    return OkResponse(std::move(result));
  }, id);
}

std::optional<JsonValue> Daemon::HandleMine(
    const std::shared_ptr<Connection>& conn, const JsonValue& params,
    const JsonValue* id) {
  const std::string text = params.GetString("series", "");
  if (text.empty()) {
    return ErrorResponse("INVALID_ARGUMENT",
                         "mine: params.series (single-letter symbol string) "
                         "is required and must be non-empty");
  }
  MinerOptions options;
  options.threshold = params.GetNumber("threshold", options.threshold);
  options.min_period = static_cast<std::size_t>(
      params.GetNumber("min_period", 1));
  options.max_period = static_cast<std::size_t>(
      params.GetNumber("max_period", 0));
  options.min_pairs = static_cast<std::size_t>(
      params.GetNumber("min_pairs", 1));
  options.positions = params.GetBool("positions", true);
  const std::string engine = params.GetString("engine", "auto");
  if (engine == "exact") {
    options.engine = MinerEngine::kExact;
  } else if (engine == "fft") {
    options.engine = MinerEngine::kFft;
  } else if (engine != "auto") {
    return ErrorResponse("INVALID_ARGUMENT",
                         "mine: unknown engine '" + engine + "'");
  }
  // Per-request budget: the request may *lower* the server default, never
  // raise past it.
  const auto server_cap =
      static_cast<std::size_t>(config_.request_budget_bytes);
  auto request_cap = static_cast<std::size_t>(
      params.GetNumber("memory_budget_bytes",
                       static_cast<double>(server_cap)));
  if (server_cap != 0) {
    request_cap = request_cap == 0 ? server_cap
                                   : std::min(request_cap, server_cap);
  }
  options.memory_budget_bytes = request_cap;
  if (pool_.limit() != 0) options.memory_budget = &pool_;
  auto deadline_ms = static_cast<std::size_t>(params.GetNumber(
      "deadline_ms", static_cast<double>(config_.default_deadline_ms)));
  const std::size_t max_entries_returned = static_cast<std::size_t>(
      params.GetNumber("max_entries_returned", 100));

  // Result cache: a request that names its series (params.series_id) is
  // keyed by ("mine", tenant, series_id, config-hash) in the durable store,
  // where the config hash covers every input that shapes the response. A
  // repeat query is answered from the store on the loop thread — no queue
  // slot, no recompute, works across daemon restarts — with "cached": true
  // so callers can tell. Partial (deadline/cancel) results are never cached.
  std::string cache_key;
  if (config_.store != nullptr) {
    const std::string series_id = params.GetString("series_id", "");
    if (!series_id.empty()) {
      if (!SessionTable::ValidName(series_id)) {
        return ErrorResponse("INVALID_ARGUMENT",
                             "mine: params.series_id must be a non-empty name "
                             "without '/', '..' or '@'");
      }
      const std::string config_canon =
          std::to_string(options.threshold) + "|" +
          std::to_string(options.min_period) + "|" +
          std::to_string(options.max_period) + "|" +
          std::to_string(options.min_pairs) + "|" +
          (options.positions ? "p" : "-") + "|" + engine + "|" +
          std::to_string(max_entries_returned);
      util::Crc32 hash;
      hash.Update(text.data(), text.size());
      hash.Update(config_canon.data(), config_canon.size());
      char hex[16];
      std::snprintf(hex, sizeof(hex), "%08x",
                    static_cast<unsigned>(hash.value()));
      cache_key = store::JoinKey(
          {"mine", RequestTenant(params), series_id, hex});
      if (Result<std::string> stored = config_.store->Get(cache_key);
          stored.ok()) {
        Result<JsonValue> cached = JsonValue::Parse(*stored);
        if (cached.ok() && cached.value().is_object() &&
            cached.value().Find("result") != nullptr &&
            cached.value().Find("result")->is_object()) {
          // TTL check: records carry the wall time they were written
          // (cached_at_ms). Pre-TTL records lack it and count as stale the
          // moment a TTL is configured — the conservative reading.
          bool fresh = true;
          if (config_.mine_cache_ttl_s > 0) {
            const auto stored_ms = static_cast<std::int64_t>(
                cached.value().GetNumber("cached_at_ms", 0));
            fresh = stored_ms > 0 &&
                    WallMs() - stored_ms <= config_.mine_cache_ttl_s * 1000;
          }
          if (fresh) {
            ++mine_cache_hits_;
            JsonValue response = std::move(cached.value());
            response.mutable_object().erase("cached_at_ms");
            response.mutable_object()["result"].mutable_object()["cached"] =
                true;
            return response;
          }
          ++mine_cache_expired_;
          DropMineCacheKey(cache_key);
        }
        // A record that no longer parses is treated as a miss; recompute
        // and overwrite it.
      }
      ++mine_cache_misses_;
    }
  }

  Result<SymbolSeries> series = SymbolSeries::FromString(text);
  if (!series.ok()) return StatusToResponse(series.status());

  // Advisory admission check before the queue: a request that cannot fit
  // even an *empty* pool is rejected immediately with the full estimate —
  // no queue slot, no allocation. (The engines still charge for real.)
  if (pool_.limit() != 0) {
    const MineMemoryEstimate estimate = EstimateMineMemory(
        series.value().size(), series.value().alphabet().size(), options);
    if (estimate.total_bytes() > pool_.limit()) {
      return ErrorResponse(
          "RESOURCE_EXHAUSTED",
          "mine rejected at admission: estimated peak memory " +
              estimate.ToString() + " exceeds the process pool of " +
              util::FormatBytes(pool_.limit()));
    }
  }

  return StartQueued(conn, ParsePriority(params), [this, series =
                                                       std::move(
                                                           series.value()),
                                                   options, deadline_ms,
                                                   max_entries_returned,
                                                   cache_key]() mutable {
    util::CancellationToken token;
    if (deadline_ms > 0) {
      token.SetTimeout(std::chrono::milliseconds(deadline_ms));
    }
    options.cancellation = &token;
    std::uint64_t flight_id = 0;
    {
      util::MutexLock lock(&flights_mutex_);
      flight_id = next_flight_id_++;
      flights_.emplace(flight_id,
                       FlightRecord{&token, std::chrono::steady_clock::now()});
    }
    const Result<MiningResult> mined = ObscureMiner(options).Mine(series);
    {
      util::MutexLock lock(&flights_mutex_);
      flights_.erase(flight_id);
    }
    if (!mined.ok()) return StatusToResponse(mined.status());
    JsonValue response = TableToJson(mined.value().periodicities,
                                     max_entries_returned);
    JsonValue::Object& result = response.mutable_object();
    result["n"] = mined.value().series_length;
    result["sigma"] = mined.value().alphabet_size;
    result["engine"] =
        mined.value().engine_used == MinerEngine::kExact ? "exact" : "fft";
    result["partial"] = mined.value().partial;
    JsonValue ok = OkResponse(std::move(result));
    if (!cache_key.empty() && !mined.value().partial) {
      // KvStore serializes internally, so the worker can write the cache
      // record directly. A failed write only costs the next query a
      // recompute — never the response. The record is stamped with the wall
      // time for TTL expiry; the stamp is stripped before a hit is served.
      const std::int64_t now_ms = WallMs();
      JsonValue record = ok;
      record.mutable_object()["cached_at_ms"] =
          static_cast<std::size_t>(now_ms);
      const std::string value = record.Dump();
      if (const Status stored = config_.store->Put(cache_key, value);
          !stored.ok()) {
        std::fprintf(stderr, "periodicad: mine cache write failed: %s\n",
                     stored.ToString().c_str());
      } else if (MineCacheBounded()) {
        loop_->Post([this, cache_key, bytes = value.size(), now_ms] {
          OnMineCachePut(cache_key, bytes, now_ms);
        });
      }
    }
    return ok;
  }, id);
}

JsonValue Daemon::HandleStreamOpen(const JsonValue& params) {
  const std::string name = params.GetString("session", "");
  const std::string tenant = RequestTenant(params);
  if (!SessionTable::ValidName(name) || !SessionTable::ValidName(tenant)) {
    return ErrorResponse("INVALID_ARGUMENT",
                         "stream_open: params.session (and params.tenant, if "
                         "set) must be non-empty names without '/', '..' or "
                         "'@'");
  }
  if (queue_.draining() || draining_) {
    return ErrorResponse("OVERLOADED", "daemon is draining for shutdown");
  }
  const bool resume = params.GetBool("resume", false);
  StreamingPeriodDetector::Options options;
  std::size_t alphabet_size = 0;
  if (resume) {
    if (!Durable()) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_open: resume requires --checkpoint_dir "
                           "or --store_dir");
    }
  } else {
    options.max_period = static_cast<std::size_t>(
        params.GetNumber("max_period", 0));
    options.block_size = static_cast<std::size_t>(
        params.GetNumber("block_size", 0));
    alphabet_size = static_cast<std::size_t>(
        params.GetNumber("alphabet_size", 0));
    if (options.max_period == 0 || alphabet_size == 0) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_open: params.max_period and "
                           "params.alphabet_size are required (or resume)");
    }
  }
  SessionTable::Rejection rejection;
  const Result<SessionTable::OpenResult> opened =
      table_.Open(tenant, name, alphabet_size, options, resume, &rejection);
  if (!opened.ok()) {
    if (opened.status().IsInvalidArgument() && !resume &&
        table_.Contains(tenant, name)) {
      return ErrorResponse("INVALID_ARGUMENT", "stream_open: session '" +
                                                   name +
                                                   "' is already open");
    }
    return TableStatusToResponse(opened.status(), rejection);
  }
  ++CountersFor(tenant).opens;
  if (config_.checkpoint_each_feed && !resume && Durable()) {
    // Per-feed durability covers the open itself: a shard that dies before
    // the first feed still leaves a thawable snapshot for its successor.
    Status saved;
    {
      // Scoped: the Handle holds the session mutex, and the failure path's
      // Close relocks it — the Handle must die before Close runs.
      SessionTable::Rejection checkpoint_rejection;
      Result<SessionTable::Handle> handle =
          table_.Acquire(tenant, name, &checkpoint_rejection);
      if (handle.ok()) saved = table_.Checkpoint(handle.value());
    }
    if (!saved.ok()) {
      (void)table_.Close(tenant, name, /*checkpoint=*/false);
      return StatusToResponse(saved);
    }
  }
  JsonValue::Object result;
  result["session"] = name;
  result["tenant"] = tenant;
  result["size"] = opened.value().size;
  return OkResponse(std::move(result));
}

JsonValue Daemon::HandleStreamFeed(const JsonValue& params) {
  const std::string name = params.GetString("session", "");
  const std::string tenant = RequestTenant(params);
  const std::string symbols = params.GetString("symbols", "");
  // Optional at-least-once guard: a client that knows its stream position
  // sends params.offset (symbols already in the session before this chunk).
  // A retried feed whose first delivery was applied-but-unacked is then
  // detected as a duplicate and acked without re-appending — what keeps a
  // migrated session byte-identical when the router replays the one
  // ambiguous in-flight request.
  const auto offset =
      static_cast<std::int64_t>(params.GetNumber("offset", -1));
  SessionTable::Rejection rejection;
  Result<SessionTable::Handle> handle =
      table_.Acquire(tenant, name, &rejection);
  if (!handle.ok()) {
    if (handle.status().IsNotFound()) {
      return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
    }
    return TableStatusToResponse(handle.status(), rejection);
  }
  StreamingPeriodDetector* detector = handle.value().detector();
  if (offset >= 0) {
    const std::size_t size = detector->size();
    const auto expected = static_cast<std::size_t>(offset);
    if (size == expected + symbols.size() && !symbols.empty()) {
      // Exact replay of the previous chunk: ack idempotently.
      if (config_.checkpoint_each_feed && Durable()) {
        if (const Status saved = table_.Checkpoint(handle.value());
            !saved.ok()) {
          return StatusToResponse(saved);
        }
      }
      JsonValue::Object result;
      result["consumed"] = symbols.size();
      result["size"] = size;
      result["duplicate"] = true;
      return OkResponse(std::move(result));
    }
    if (size != expected) {
      return ErrorResponse(
          "INVALID_ARGUMENT",
          "stream_feed: offset " + std::to_string(offset) +
              " does not match session size " + std::to_string(size));
    }
  }
  const Alphabet& alphabet = detector->alphabet();
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const Result<SymbolId> id =
        alphabet.Find(std::string(1, symbols[i]));
    if (!id.ok()) {
      return ErrorResponse("INVALID_ARGUMENT",
                           "stream_feed: symbol '" +
                               std::string(1, symbols[i]) + "' at offset " +
                               std::to_string(i) +
                               " is outside the session alphabet (symbols "
                               "before it were consumed)");
    }
    detector->Append(id.value());
  }
  if (config_.checkpoint_each_feed && Durable()) {
    // Ack-after-persist: the response is withheld until the checkpoint
    // landed, so "acked" always implies "thawable elsewhere". On failure
    // the in-memory append stands but the client retries with its offset,
    // which the duplicate guard above resolves exactly once.
    if (const Status saved = table_.Checkpoint(handle.value());
        !saved.ok()) {
      return StatusToResponse(saved);
    }
  }
  TenantCounters& counters = CountersFor(tenant);
  ++counters.feeds;
  counters.symbols += symbols.size();
  JsonValue::Object result;
  result["consumed"] = symbols.size();
  result["size"] = detector->size();
  return OkResponse(std::move(result));
}

std::optional<JsonValue> Daemon::HandleStreamDetect(
    const std::shared_ptr<Connection>& conn, const JsonValue& params,
    const JsonValue* id) {
  const std::string name = params.GetString("session", "");
  const std::string tenant = RequestTenant(params);
  if (!table_.Contains(tenant, name)) {
    return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
  }
  const double threshold = params.GetNumber("threshold", 0.5);
  const auto min_period = static_cast<std::size_t>(
      params.GetNumber("min_period", 1));
  const auto min_pairs = static_cast<std::size_t>(
      params.GetNumber("min_pairs", 1));
  ++CountersFor(tenant).detects;
  return StartQueued(conn, ParsePriority(params), [this, tenant, name,
                                                   threshold, min_period,
                                                   min_pairs]() {
    // Acquire on the worker: an evicted session thaws here, off the loop
    // thread, so the file read never stalls other connections.
    SessionTable::Rejection rejection;
    Result<SessionTable::Handle> handle =
        table_.Acquire(tenant, name, &rejection);
    if (!handle.ok()) {
      if (handle.status().IsNotFound()) {
        return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
      }
      return TableStatusToResponse(handle.status(), rejection);
    }
    StreamingPeriodDetector* detector = handle.value().detector();
    const PeriodicityTable table =
        detector->Detect(threshold, min_period, min_pairs);
    JsonValue response = TableToJson(table, 0);
    response.mutable_object()["size"] = detector->size();
    return OkResponse(std::move(response.mutable_object()));
  }, id);
}

JsonValue Daemon::HandleStreamClose(const JsonValue& params) {
  const std::string name = params.GetString("session", "");
  const std::string tenant = RequestTenant(params);
  const bool checkpoint = params.GetBool("checkpoint", false);
  if (checkpoint && !Durable()) {
    if (!table_.Contains(tenant, name)) {
      return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
    }
    return ErrorResponse("INVALID_ARGUMENT",
                         "stream_close: checkpoint requires "
                         "--checkpoint_dir or --store_dir");
  }
  const Result<SessionTable::CloseResult> closed =
      table_.Close(tenant, name, checkpoint);
  if (!closed.ok()) {
    if (closed.status().IsNotFound()) {
      return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
    }
    return StatusToResponse(closed.status());
  }
  ++CountersFor(tenant).closes;
  JsonValue::Object result;
  result["session"] = name;
  result["tenant"] = tenant;
  result["size"] = closed.value().size;
  if (!closed.value().checkpoint_path.empty()) {
    result["checkpoint"] = closed.value().checkpoint_path;
  }
  return OkResponse(std::move(result));
}

JsonValue Daemon::HandleStreamDiscard(const JsonValue& params) {
  // Migration fence: drops the local in-memory copy of a session whose
  // ownership moved to another shard. No checkpoint is written and the
  // on-disk snapshot is left alone — it may already be the new owner's
  // authoritative state (see SessionTable::Discard). The router sends this
  // to purge stale duplicates; it is safe to call on any open session.
  const std::string name = params.GetString("session", "");
  const std::string tenant = RequestTenant(params);
  const Result<SessionTable::CloseResult> discarded =
      table_.Discard(tenant, name);
  if (!discarded.ok()) {
    if (discarded.status().IsNotFound()) {
      return ErrorResponse("NOT_FOUND", "no open session '" + name + "'");
    }
    return StatusToResponse(discarded.status());
  }
  JsonValue::Object result;
  result["session"] = name;
  result["tenant"] = tenant;
  result["size"] = discarded.value().size;
  result["discarded"] = true;
  return OkResponse(std::move(result));
}

// --- Mine-cache bounding ---------------------------------------------------

void Daemon::LoadMineCacheIndex() {
  // Runs in Run() before the loop serves, so the loop-confined index is
  // built race-free. Unbounded configs skip it: the pre-bound behavior
  // (grow forever, serve exact hits) is preserved byte-for-byte.
  if (config_.store == nullptr || !MineCacheBounded()) return;
  const std::string prefix = store::JoinKey({"mine", ""});
  for (const std::string& key : config_.store->ListKeys(prefix)) {
    const Result<std::string> value = config_.store->Get(key);
    if (!value.ok()) continue;
    MineCacheEntry entry;
    entry.bytes = value.value().size();
    if (const Result<JsonValue> record = JsonValue::Parse(value.value());
        record.ok() && record.value().is_object()) {
      entry.stored_ms = static_cast<std::int64_t>(
          record.value().GetNumber("cached_at_ms", 0));
    }
    mine_cache_bytes_ += entry.bytes;
    mine_cache_index_.emplace(key, entry);
  }
  EnforceMineCacheBytes();
  if (!mine_cache_index_.empty()) {
    std::fprintf(stderr,
                 "periodicad: mine cache holds %zu entries (%zu bytes)\n",
                 mine_cache_index_.size(), mine_cache_bytes_);
  }
}

void Daemon::OnMineCachePut(const std::string& key, std::size_t bytes,
                            std::int64_t stored_ms) {
  MineCacheEntry& entry = mine_cache_index_[key];
  mine_cache_bytes_ -= entry.bytes;  // 0 for a brand-new key
  entry.bytes = bytes;
  entry.stored_ms = stored_ms;
  mine_cache_bytes_ += bytes;
  EnforceMineCacheBytes();
}

void Daemon::DropMineCacheKey(const std::string& key) {
  if (const Status dropped = config_.store->Delete(key); !dropped.ok()) {
    std::fprintf(stderr, "periodicad: mine cache tombstone failed: %s\n",
                 dropped.ToString().c_str());
  }
  const auto it = mine_cache_index_.find(key);
  if (it != mine_cache_index_.end()) {
    mine_cache_bytes_ -= it->second.bytes;
    mine_cache_index_.erase(it);
  }
}

void Daemon::EnforceMineCacheBytes() {
  if (config_.mine_cache_max_bytes <= 0) return;
  const auto cap = static_cast<std::size_t>(config_.mine_cache_max_bytes);
  while (mine_cache_bytes_ > cap && !mine_cache_index_.empty()) {
    // Evict the oldest-written record (pre-TTL records with no stamp sort
    // first, so legacy entries drain before fresh ones).
    auto oldest = mine_cache_index_.begin();
    for (auto it = mine_cache_index_.begin(); it != mine_cache_index_.end();
         ++it) {
      if (it->second.stored_ms < oldest->second.stored_ms) oldest = it;
    }
    const std::string key = oldest->first;
    DropMineCacheKey(key);
    ++mine_cache_evictions_;
  }
}

// --- Drain and watchdog ----------------------------------------------------

void Daemon::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  std::fprintf(stderr, "periodicad: draining...\n");
  // Stop accepting: no new connections, and the queue rejects new work with
  // draining=true for anything that still races in.
  loop_->Remove(listener_.get());
  listener_.Close();
  ::unlink(config_.socket_path.c_str());
  if (tcp_listener_.valid()) {
    loop_->Remove(tcp_listener_.get());
    tcp_listener_.Close();
  }
  // Drain the queue off-loop: in-flight jobs finish and their completions
  // flush through the still-running loop; the final posted task fires once
  // every completion is already behind it (Post order is submission order).
  drain_thread_ = std::thread([this] {
    queue_.Drain();
    loop_->Post([this] {
      drain_queue_done_ = true;
      MaybeFinishDrain();
    });
  });
  MaybeFinishDrain();
}

void Daemon::MaybeFinishDrain() {
  if (!draining_ || !drain_queue_done_ || drain_done_) return;
  for (const auto& [fd, conn] : connections_) {
    if (!conn->out.empty()) return;  // a response is still flushing
  }
  drain_done_ = true;
  CheckpointSessionsForDrain();
  loop_->Stop();
}

void Daemon::CheckpointSessionsForDrain() {
  std::vector<std::string> log;
  table_.CheckpointAllForDrain(&log);
  for (const std::string& line : log) {
    std::fprintf(stderr, "periodicad: %s\n", line.c_str());
  }
}

void Daemon::WatchdogLoop() {
  while (!g_shutdown.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.watchdog_interval_ms));
    if (config_.wedge_timeout_ms <= 0) continue;
    const auto now = std::chrono::steady_clock::now();
    util::MutexLock lock(&flights_mutex_);
    for (auto& [id, flight] : flights_) {
      const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - flight.start);
      if (age.count() >= config_.wedge_timeout_ms &&
          !flight.token->cancelled()) {
        // A wedged (or merely over-budget) job: cancel cooperatively. The
        // engine stops at its next stage boundary and returns a partial
        // result; the worker slot comes back.
        flight.token->RequestCancel();
        watchdog_cancels_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "periodicad: watchdog cancelled job %llu after %lld ms\n",
                     static_cast<unsigned long long>(id),
                     static_cast<long long>(age.count()));
      }
    }
  }
}

Status Daemon::Run() {
  Result<std::unique_ptr<EventLoop>> loop = EventLoop::Create();
  PERIODICA_RETURN_NOT_OK(loop.status());
  loop_ = std::move(loop.value());

  Result<FdHandle> listener = ListenUnix(config_.socket_path);
  PERIODICA_RETURN_NOT_OK(listener.status());
  listener_ = std::move(listener.value());
  PERIODICA_RETURN_NOT_OK(SetNonBlocking(listener_.get()));
  PERIODICA_RETURN_NOT_OK(SetNonBlocking(g_wake_pipe[0]));

  EventLoop::Handler accept_handler;
  accept_handler.on_readable = [this] { OnAcceptable(); };
  PERIODICA_RETURN_NOT_OK(loop_->Add(listener_.get(), /*want_read=*/true,
                                     /*want_write=*/false,
                                     std::move(accept_handler)));
  EventLoop::Handler wake_handler;
  wake_handler.on_readable = [this] { OnWakePipe(); };
  PERIODICA_RETURN_NOT_OK(loop_->Add(g_wake_pipe[0], /*want_read=*/true,
                                     /*want_write=*/false,
                                     std::move(wake_handler)));

  if (config_.tcp_port >= 0) {
    std::uint16_t bound_port = 0;
    Result<FdHandle> tcp_listener = util::TcpListen(
        config_.tcp_host, static_cast<std::uint16_t>(config_.tcp_port),
        /*backlog=*/64, &bound_port);
    PERIODICA_RETURN_NOT_OK(tcp_listener.status());
    tcp_listener_ = std::move(tcp_listener.value());
    EventLoop::Handler tcp_accept_handler;
    tcp_accept_handler.on_readable = [this] { OnTcpAcceptable(); };
    PERIODICA_RETURN_NOT_OK(loop_->Add(tcp_listener_.get(),
                                       /*want_read=*/true,
                                       /*want_write=*/false,
                                       std::move(tcp_accept_handler)));
    // Machine-readable: the soak and tests pass --tcp_port=0 and scrape
    // the actual port from this line.
    std::fprintf(stderr, "periodicad: tcp listening on %s:%u\n",
                 config_.tcp_host.c_str(),
                 static_cast<unsigned>(bound_port));
  }

  LoadMineCacheIndex();

  std::fprintf(stderr, "periodicad: serving on %s (%zu workers, depth %lld)\n",
               config_.socket_path.c_str(), queue_.num_workers(),
               static_cast<long long>(config_.max_queue_depth));

  std::thread watchdog([this] { WatchdogLoop(); });

  // One thread multiplexes every connection; it returns after the drain
  // sequence (BeginDrain -> queue drained -> responses flushed ->
  // sessions checkpointed -> Stop).
  const Status served = loop_->Run();

  g_shutdown.store(true, std::memory_order_relaxed);
  if (drain_thread_.joinable()) drain_thread_.join();
  watchdog.join();
  // Close every remaining connection; their pending output (if any) was
  // already flushed by MaybeFinishDrain's gating.
  for (auto& [fd, conn] : connections_) {
    conn->closed = true;
    loop_->Remove(fd);
  }
  connections_.clear();
  PERIODICA_RETURN_NOT_OK(served);
  std::fprintf(stderr, "periodicad: drained, exiting\n");
  return Status::OK();
}

// --- Fault arming ----------------------------------------------------------

/// Parses "--faults site:nth[:repeat],..." into armed ScopedFaults that live
/// for the process lifetime (the soak's knob for exercising the
/// server/accept, server/read, server/write, event_loop/poll and
/// job_queue/enqueue sites in the shipped binary).
Status ArmFaults(const std::string& spec,
                 std::vector<std::unique_ptr<util::ScopedFault>>* armed) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("--faults item '" + item +
                                     "' is not site:nth[:repeat]");
    }
    const std::string site = item.substr(0, colon);
    std::string rest = item.substr(colon + 1);
    bool repeat = false;
    if (const std::size_t colon2 = rest.find(':');
        colon2 != std::string::npos) {
      repeat = rest.substr(colon2 + 1) == "repeat";
      rest = rest.substr(0, colon2);
    }
    char* parse_end = nullptr;
    const unsigned long long nth = std::strtoull(rest.c_str(), &parse_end, 10);
    if (parse_end == rest.c_str() || *parse_end != '\0' || nth == 0) {
      return Status::InvalidArgument("--faults item '" + item +
                                     "' has a bad hit number");
    }
    armed->push_back(std::make_unique<util::ScopedFault>(
        site, Status::IOError("injected fault at " + site), nth, repeat));
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  DaemonConfig config;
  FlagSet flags("periodicad");
  flags.AddString("socket", &config.socket_path,
                  "Unix socket path to serve on (required)");
  flags.AddInt64("tcp_port", &config.tcp_port,
                 "also serve the same protocol on this TCP port (0 = let "
                 "the kernel pick, printed to stderr; -1 = no TCP "
                 "listener). This is the shard transport periodica_router "
                 "speaks");
  flags.AddString("tcp_host", &config.tcp_host,
                  "address the TCP listener binds (default 127.0.0.1; set "
                  "0.0.0.0 only behind a trusted network — the protocol is "
                  "unauthenticated)");
  flags.AddString("checkpoint_dir", &config.checkpoint_dir,
                  "directory for streaming-session checkpoints (drain and "
                  "eviction target; empty disables checkpointing AND "
                  "quota eviction unless --store_dir is set)");
  flags.AddString("store_dir", &config.store_dir,
                  "directory for the durable KV store (WAL + sorted "
                  "segments): session checkpoints and the mine result cache "
                  "live here and survive crashes; empty disables it");
  flags.AddInt64("store_wal_rotate_bytes", &config.store_wal_rotate_bytes,
                 "rotate the store WAL into a sorted segment past this many "
                 "bytes (0 = library default; the soak shrinks it to "
                 "exercise rotation and compaction under faults)");
  flags.AddInt64("workers", &config.workers,
                 "mining worker threads (0 = hardware concurrency)");
  flags.AddInt64("max_queue_depth", &config.max_queue_depth,
                 "max jobs waiting before OVERLOADED rejection");
  flags.AddDouble("max_queue_latency_ms", &config.max_queue_latency_ms,
                  "queue-wait EWMA limit for admission (0 = depth only)");
  flags.AddInt64("memory_budget_bytes", &config.memory_budget_bytes,
                 "process-global mining memory pool (0 = unlimited)");
  flags.AddInt64("request_budget_bytes", &config.request_budget_bytes,
                 "per-request memory cap; requests may lower but not raise "
                 "it (0 = unlimited)");
  flags.AddInt64("session_budget_bytes", &config.session_budget_bytes,
                 "resident streaming-session bytes across all tenants; past "
                 "it idle sessions evict to checkpoints (0 = unlimited)");
  flags.AddInt64("tenant_budget_bytes", &config.tenant_budget_bytes,
                 "resident streaming-session bytes per tenant (0 = "
                 "unlimited)");
  flags.AddInt64("max_sessions_per_tenant", &config.max_sessions_per_tenant,
                 "open sessions (resident + evicted) per tenant before "
                 "QUOTA_EXCEEDED (0 = no cap)");
  flags.AddInt64("quota_retry_after_ms", &config.quota_retry_after_ms,
                 "retry hint carried in QUOTA_EXCEEDED rejections");
  flags.AddInt64("default_deadline_ms", &config.default_deadline_ms,
                 "deadline for requests that do not set one (0 = none)");
  flags.AddInt64("wedge_timeout_ms", &config.wedge_timeout_ms,
                 "watchdog cancels mining jobs running longer than this "
                 "(0 = never)");
  flags.AddInt64("watchdog_interval_ms", &config.watchdog_interval_ms,
                 "watchdog scan interval");
  flags.AddInt64("max_request_bytes", &config.max_request_bytes,
                 "max bytes in one request line");
  flags.AddBool("checkpoint_each_feed", &config.checkpoint_each_feed,
                "persist the session checkpoint after every stream_open/"
                "stream_feed (ack-after-persist); with a shared "
                "--checkpoint_dir this is what lets periodica_router "
                "migrate live sessions to a peer shard");
  flags.AddInt64("mine_cache_ttl_s", &config.mine_cache_ttl_s,
                 "expire mine-cache records older than this many seconds "
                 "(tombstoned on next lookup; 0 = never expire)");
  flags.AddInt64("mine_cache_max_bytes", &config.mine_cache_max_bytes,
                 "bound the mine result cache; oldest records are "
                 "tombstoned past this many bytes (0 = unbounded)");
  flags.AddString("faults", &config.faults,
                  "fault sites to arm: site:nth[:repeat],... (e.g. "
                  "server/read:3:repeat)");
  flags.SetEpilog(
      "Serves newline-delimited JSON requests over a Unix socket; see\n"
      "docs/SERVING.md for the protocol, overload semantics and capacity\n"
      "planning. One epoll event loop multiplexes every connection;\n"
      "streaming sessions are multi-tenant with per-tenant memory quotas\n"
      "(idle sessions evict to --checkpoint_dir and thaw on next use).\n"
      "SIGTERM drains gracefully: admission stops, in-flight jobs finish,\n"
      "streaming sessions checkpoint to --checkpoint_dir, exit code 0.");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "periodicad: %s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (config.socket_path.empty()) {
    std::fprintf(stderr, "periodicad: --socket is required\n%s",
                 flags.Usage().c_str());
    return 2;
  }
  if (config.tcp_port > 65535) {
    std::fprintf(stderr, "periodicad: --tcp_port must be in [0, 65535]\n");
    return 2;
  }
  if (config.checkpoint_each_feed && config.checkpoint_dir.empty() &&
      config.store_dir.empty()) {
    std::fprintf(stderr,
                 "periodicad: --checkpoint_each_feed requires "
                 "--checkpoint_dir or --store_dir\n");
    return 2;
  }
  if (!config.checkpoint_dir.empty()) {
    // Eviction and drain both write here; a missing directory would
    // silently turn every eviction into a quota rejection.
    std::error_code error;
    std::filesystem::create_directories(config.checkpoint_dir, error);
    if (error) {
      std::fprintf(stderr, "periodicad: cannot create --checkpoint_dir %s: %s\n",
                   config.checkpoint_dir.c_str(), error.message().c_str());
      return 2;
    }
  }

  std::vector<std::unique_ptr<util::ScopedFault>> armed_faults;
  if (const Status status = ArmFaults(config.faults, &armed_faults);
      !status.ok()) {
    std::fprintf(stderr, "periodicad: %s\n", status.ToString().c_str());
    return 2;
  }

  // Open the durable store before serving: recovery (WAL replay, segment
  // scrub) happens here, so a damaged store stops the daemon with a precise
  // error instead of surfacing corruption to some later request. Faults
  // armed above are live during recovery — the soak kills the daemon
  // mid-write and restarts it through this exact path.
  std::unique_ptr<store::KvStore> kv_store;
  if (!config.store_dir.empty()) {
    store::KvStore::Options store_options;
    store_options.dir = config.store_dir;
    if (config.store_wal_rotate_bytes > 0) {
      store_options.wal_rotate_bytes =
          static_cast<std::size_t>(config.store_wal_rotate_bytes);
    }
    Result<std::unique_ptr<store::KvStore>> opened =
        store::KvStore::Open(std::move(store_options));
    if (!opened.ok()) {
      std::fprintf(stderr, "periodicad: cannot open --store_dir %s: %s\n",
                   config.store_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    kv_store = std::move(opened.value());
    config.store = kv_store.get();
    const store::KvStore::Stats stats = kv_store->GetStats();
    if (stats.recoveries > 0) {
      std::fprintf(stderr,
                   "periodicad: store recovered %llu records (%llu torn "
                   "tail bytes discarded, %zu segments)\n",
                   static_cast<unsigned long long>(stats.recovered_records),
                   static_cast<unsigned long long>(stats.torn_tail_bytes),
                   stats.segments);
    }
  }

  if (::pipe(g_wake_pipe) != 0) {
    std::fprintf(stderr, "periodicad: pipe() failed\n");
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  Daemon daemon(std::move(config));
  if (const Status status = daemon.Run(); !status.ok()) {
    std::fprintf(stderr, "periodicad: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace periodica::tools

int main(int argc, char** argv) { return periodica::tools::Main(argc, argv); }
