#ifndef PERIODICA_TOOLS_RETRY_BACKOFF_H_
#define PERIODICA_TOOLS_RETRY_BACKOFF_H_

// The retry backoff policy shared by periodica_client and the router's
// shard-reconnect supervision: honor the server's retry_after_ms hint when
// it gave one, otherwise exponential doubling from a base; cap, then jitter
// ±25% so clients that were rejected together do not come back together.
// Pulled out of periodica_client so the policy is unit-testable with a
// deterministic Rng (tests/retry_backoff_test.cc pins the jitter bounds,
// the cap, and hint precedence).

#include <algorithm>
#include <cstdint>

#include "periodica/util/rng.h"

namespace periodica::tools {

/// The sleep before retry number `attempt` (0-based). `retry_after_ms > 0`
/// is the server's hint and takes precedence over the exponential schedule;
/// `max_backoff_ms` caps the pre-jitter value (so the jittered result can
/// exceed it by at most 25%). The shift saturates at attempt 20 to avoid
/// overflow on pathological retry budgets.
inline std::int64_t NextBackoffMs(std::int64_t attempt,
                                  std::int64_t retry_after_ms,
                                  std::int64_t max_backoff_ms,
                                  std::int64_t base_ms, Rng* rng) {
  std::int64_t backoff =
      retry_after_ms > 0
          ? retry_after_ms
          : base_ms * (std::int64_t{1}
                       << std::min<std::int64_t>(std::max<std::int64_t>(
                                                     attempt, 0),
                                                 20));
  backoff = std::min(backoff, max_backoff_ms);
  if (backoff > 0) {
    const std::int64_t quarter = std::max<std::int64_t>(1, backoff / 4);
    backoff += rng->UniformRange(-quarter, quarter);
    if (backoff < 0) backoff = 0;
  }
  return backoff;
}

}  // namespace periodica::tools

#endif  // PERIODICA_TOOLS_RETRY_BACKOFF_H_
