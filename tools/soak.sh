#!/usr/bin/env bash
# tools/soak.sh — serving-layer soak test (docs/ROBUSTNESS.md, docs/SERVING.md).
#
# Three stages, each against its own deliberately undersized daemon:
#
#   Stage 1 (overload + drain): storms periodicad with the closed-loop mine
#   load generator while fault injection drops an accept, an enqueue, a read
#   and a write mid-run, samples the daemon's resident set once a second,
#   and finishes with the nastiest composite: SIGTERM while load is still
#   arriving.
#
#   Stage 2 (multi-tenant sessions): runs the session-lifecycle load
#   (open -> feed -> detect -> close across many tenants) against a daemon
#   whose tenant budgets force continuous eviction/thaw, with faults armed
#   on server/accept, server/read, server/write and event_loop/poll.
#
#   Stage 3 (store crash consistency): for every store/* write fault site,
#   SIGKILLs a --store_dir daemon while that site is failing every write,
#   restarts it cold, and asserts recovery succeeds, a previously drained
#   session thaws byte-identically, acknowledged checkpoints survive, and
#   the segment scrub reports zero errors.
#
#   tools/soak.sh [--build-dir DIR] [--seconds N] [--concurrency N]
#                 [--rss-limit-mb N] [--sessions N] [--tenants N]
#
# Asserts, per stage:
#   1. zero crashes — the daemon stays up through the whole load phase;
#   2. every response the load generator saw was structured (ok / OVERLOADED
#      / QUOTA_EXCEEDED / partial; dropped connections are expected,
#      malformed lines are not): periodica_load exits 0;
#   3. bounded RSS — the daemon's peak resident set stays under
#      --rss-limit-mb despite the sustained request stream;
#   4. clean drain — SIGTERM stops admission, finishes in-flight work,
#      checkpoints open sessions, and the daemon exits 0.
#
# Exits 0 iff all hold for both stages; prints the failing assertion
# otherwise.
set -euo pipefail

BUILD_DIR=build/release
DURATION=60
CONCURRENCY=8
RSS_LIMIT_MB=512
SESSIONS=2000
TENANTS=16
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --seconds) DURATION=$2; shift 2 ;;
    --concurrency) CONCURRENCY=$2; shift 2 ;;
    --rss-limit-mb) RSS_LIMIT_MB=$2; shift 2 ;;
    --sessions) SESSIONS=$2; shift 2 ;;
    --tenants) TENANTS=$2; shift 2 ;;
    *) echo "soak.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

DAEMON=$BUILD_DIR/tools/periodicad
LOAD=$BUILD_DIR/tools/periodica_load
for bin in "$DAEMON" "$LOAD"; do
  if [[ ! -x $bin ]]; then
    echo "soak.sh: $bin is not built (cmake --build --preset release)" >&2
    exit 2
  fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/periodica_soak.XXXXXX")
SOCKET=$WORK/soak.sock
DAEMON_PID=""
LOAD_PID=""
cleanup() {
  [[ -n $DAEMON_PID ]] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  [[ -n $LOAD_PID ]] && kill -9 "$LOAD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# A deliberately small daemon so the load actually overloads it, with a
# global memory budget and one injected fault on each serving-layer site.
"$DAEMON" --socket="$SOCKET" --checkpoint_dir="$WORK/ckpt" \
  --workers=2 --max_queue_depth=4 --max_queue_latency_ms=2000 \
  --memory_budget_bytes=$((256 * 1024 * 1024)) \
  --wedge_timeout_ms=30000 \
  --faults=server/accept:25,job_queue/enqueue:40,server/read:120,server/write:200 \
  >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [[ -S $SOCKET ]] && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — daemon died during startup:" >&2
    cat "$WORK/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -S $SOCKET ]] || { echo "soak.sh: FAIL — socket never appeared" >&2; exit 1; }

"$LOAD" --socket="$SOCKET" --seconds="$DURATION" \
  --concurrency="$CONCURRENCY" --length=4096 --period=25 --sigma=4 \
  >"$WORK/load.json" 2>"$WORK/load.log" &
LOAD_PID=$!

# Sample the daemon's resident set once a second for the load phase, then
# TERM it while requests are still arriving (the last third of the run).
LOAD_PHASE=$((DURATION * 2 / 3))
[[ $LOAD_PHASE -lt 1 ]] && LOAD_PHASE=1
MAX_RSS_KB=0
for _ in $(seq 1 "$LOAD_PHASE"); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — daemon crashed under load:" >&2
    tail -20 "$WORK/daemon.log" >&2
    exit 1
  fi
  rss_kb=$(awk '/^VmRSS:/ {print $2}' "/proc/$DAEMON_PID/status" 2>/dev/null || echo 0)
  [[ ${rss_kb:-0} -gt $MAX_RSS_KB ]] && MAX_RSS_KB=$rss_kb
  sleep 1
done

kill -TERM "$DAEMON_PID"
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
LOAD_RC=0
wait "$LOAD_PID" || LOAD_RC=$?

echo "soak.sh: load summary: $(cat "$WORK/load.json" 2>/dev/null || echo '(missing)')"
echo "soak.sh: daemon peak RSS: $((MAX_RSS_KB / 1024)) MiB (limit ${RSS_LIMIT_MB} MiB)"
echo "soak.sh: daemon exit after SIGTERM mid-load: $DAEMON_RC"

FAILED=0
if [[ $DAEMON_RC -ne 0 ]]; then
  echo "soak.sh: FAIL — SIGTERM drain exited $DAEMON_RC, want 0:" >&2
  tail -20 "$WORK/daemon.log" >&2
  FAILED=1
fi
if [[ $LOAD_RC -ne 0 ]]; then
  echo "soak.sh: FAIL — load generator saw malformed responses:" >&2
  cat "$WORK/load.json" "$WORK/load.log" >&2 || true
  FAILED=1
fi
if [[ $((MAX_RSS_KB / 1024)) -ge $RSS_LIMIT_MB ]]; then
  echo "soak.sh: FAIL — peak RSS $((MAX_RSS_KB / 1024)) MiB >= ${RSS_LIMIT_MB} MiB" >&2
  FAILED=1
fi
if grep -qE "Sanitizer|runtime error" "$WORK/daemon.log"; then
  echo "soak.sh: FAIL — sanitizer findings in the daemon log:" >&2
  grep -E "Sanitizer|runtime error" "$WORK/daemon.log" >&2
  FAILED=1
fi

if [[ $FAILED -ne 0 ]]; then
  exit 1
fi
echo "soak.sh: stage 1 PASS — zero crashes, structured responses, bounded RSS, clean drain"

# --- Stage 2: multi-tenant session soak -------------------------------------
# A fresh daemon with tenant budgets small enough that the session load
# churns through eviction/thaw continuously, and one injected fault on each
# connection-facing site plus the event loop's poll itself (which must be
# absorbed like EINTR). The tenant budget must bite even in the worst-case
# schedule where the load's worker threads serialize (a real mode on
# 1-core CI hosts: only one worker's session slice is resident at a time,
# ~sessions/concurrency/tenants sessions per tenant at ~130 KiB each), so
# it is sized well below one serialized slice, not just below the full
# session count.
SOCKET2=$WORK/soak2.sock
"$DAEMON" --socket="$SOCKET2" --checkpoint_dir="$WORK/ckpt2" \
  --workers=2 --max_queue_depth=64 --max_queue_latency_ms=5000 \
  --session_budget_bytes=$((64 * 1024 * 1024)) \
  --tenant_budget_bytes=$((1 * 1024 * 1024)) \
  --wedge_timeout_ms=30000 \
  --faults=server/accept:15,server/read:60,server/write:110,event_loop/poll:30 \
  >"$WORK/daemon2.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [[ -S $SOCKET2 ]] && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — stage 2 daemon died during startup:" >&2
    cat "$WORK/daemon2.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -S $SOCKET2 ]] || { echo "soak.sh: FAIL — stage 2 socket never appeared" >&2; exit 1; }

"$LOAD" --socket="$SOCKET2" --sessions="$SESSIONS" --tenants="$TENANTS" \
  --concurrency="$CONCURRENCY" --feed_rounds=2 --feed_chunk=64 \
  --detect_every=32 --max_period=16 \
  >"$WORK/load2.json" 2>"$WORK/load2.log" &
LOAD_PID=$!

MAX_RSS2_KB=0
while kill -0 "$LOAD_PID" 2>/dev/null; do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — stage 2 daemon crashed under session load:" >&2
    tail -20 "$WORK/daemon2.log" >&2
    exit 1
  fi
  rss_kb=$(awk '/^VmRSS:/ {print $2}' "/proc/$DAEMON_PID/status" 2>/dev/null || echo 0)
  [[ ${rss_kb:-0} -gt $MAX_RSS2_KB ]] && MAX_RSS2_KB=$rss_kb
  sleep 0.5
done
LOAD_RC2=0
wait "$LOAD_PID" || LOAD_RC2=$?
LOAD_PID=""

if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
  echo "soak.sh: FAIL — stage 2 daemon crashed before drain:" >&2
  tail -20 "$WORK/daemon2.log" >&2
  exit 1
fi
kill -TERM "$DAEMON_PID"
DAEMON_RC2=0
wait "$DAEMON_PID" || DAEMON_RC2=$?
DAEMON_PID=""

EVICTIONS=$(python3 -c 'import json,sys; print(int(json.load(open(sys.argv[1])).get("evictions", 0)))' \
  "$WORK/load2.json" 2>/dev/null || echo 0)

echo "soak.sh: stage 2 load summary: $(cat "$WORK/load2.json" 2>/dev/null || echo '(missing)')"
echo "soak.sh: stage 2 daemon peak RSS: $((MAX_RSS2_KB / 1024)) MiB (limit ${RSS_LIMIT_MB} MiB)"
echo "soak.sh: stage 2 daemon exit after SIGTERM: $DAEMON_RC2"

if [[ $DAEMON_RC2 -ne 0 ]]; then
  echo "soak.sh: FAIL — stage 2 SIGTERM drain exited $DAEMON_RC2, want 0:" >&2
  tail -20 "$WORK/daemon2.log" >&2
  FAILED=1
fi
if [[ $LOAD_RC2 -ne 0 ]]; then
  echo "soak.sh: FAIL — stage 2 session load saw unexpected errors:" >&2
  cat "$WORK/load2.json" "$WORK/load2.log" >&2 || true
  FAILED=1
fi
if [[ $((MAX_RSS2_KB / 1024)) -ge $RSS_LIMIT_MB ]]; then
  echo "soak.sh: FAIL — stage 2 peak RSS $((MAX_RSS2_KB / 1024)) MiB >= ${RSS_LIMIT_MB} MiB" >&2
  FAILED=1
fi
if [[ $EVICTIONS -lt 1 ]]; then
  echo "soak.sh: FAIL — stage 2 never evicted a session (budgets did not bite)" >&2
  FAILED=1
fi
if grep -qE "Sanitizer|runtime error" "$WORK/daemon2.log"; then
  echo "soak.sh: FAIL — sanitizer findings in the stage 2 daemon log:" >&2
  grep -E "Sanitizer|runtime error" "$WORK/daemon2.log" >&2
  FAILED=1
fi

if [[ $FAILED -ne 0 ]]; then
  exit 1
fi
echo "soak.sh: stage 2 PASS — session churn under faults, evictions=$EVICTIONS, clean drain"

# --- Stage 3: store crash consistency (SIGKILL mid-write) --------------------
# One daemon lineage over a single --store_dir, killed with SIGKILL while a
# different store/* write site is failing every write, then restarted cold.
# The invariants, per site (docs/ROBUSTNESS.md "Durability"):
#   1. startup recovery always succeeds (torn WAL tails are discarded, never
#      fatal; segment scrub reports zero errors);
#   2. the session checkpointed before the crashes thaws bit-identically —
#      the same stream_detect response, byte for byte, after every kill;
#   3. an acknowledged write survives: if stream_close(checkpoint) returned
#      ok under the injected fault, the session must resume after the kill.
# The WAL rotation threshold is shrunk so checkpoint-sized writes cross the
# rotation and compaction paths (store/segment_write, store/manifest_rename),
# not just the append path.
CLIENT=$BUILD_DIR/tools/periodica_client
if [[ ! -x $CLIENT ]]; then
  echo "soak.sh: $CLIENT is not built (cmake --build --preset release)" >&2
  exit 2
fi
SOCKET3=$WORK/soak3.sock
STORE3=$WORK/store3
SYMS=$(printf 'abcabcabcabc%.0s' $(seq 1 25))  # 300 symbols, period 3

start_store_daemon() {  # args: extra daemon flags
  rm -f "$SOCKET3"
  "$DAEMON" --socket="$SOCKET3" --store_dir="$STORE3" \
    --store_wal_rotate_bytes=4096 --workers=2 "$@" \
    >>"$WORK/daemon3.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [[ -S $SOCKET3 ]] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "soak.sh: FAIL — stage 3 daemon died during startup:" >&2
      tail -20 "$WORK/daemon3.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  [[ -S $SOCKET3 ]] || { echo "soak.sh: FAIL — stage 3 socket never appeared" >&2; exit 1; }
}

req3() {  # method params — prints the response line, returns the client code
  "$CLIENT" --socket="$SOCKET3" --method="$1" --params="$2"
}

# Baseline: establish session s1, capture the reference detect response, and
# let SIGTERM drain checkpoint it into the store.
start_store_daemon
req3 stream_open '{"session":"s1","max_period":16,"alphabet_size":3}' >/dev/null
req3 stream_feed "{\"session\":\"s1\",\"symbols\":\"$SYMS\"}" >/dev/null
REF=$(req3 stream_detect '{"session":"s1","threshold":0.5}')
kill -TERM "$DAEMON_PID"
RC3=0; wait "$DAEMON_PID" || RC3=$?; DAEMON_PID=""
if [[ $RC3 -ne 0 || -z $REF ]]; then
  echo "soak.sh: FAIL — stage 3 baseline drain exited $RC3:" >&2
  tail -20 "$WORK/daemon3.log" >&2
  exit 1
fi

for SITE in store/wal_append store/wal_fsync store/segment_write \
            store/manifest_rename; do
  # (a) Faulted run: every store write through $SITE fails; generate write
  # traffic (a new session closed with a checkpoint), then SIGKILL — the
  # worst case: injected write failures AND a crash with no drain.
  start_store_daemon --faults="$SITE:1:repeat"
  req3 stream_open '{"session":"w","max_period":16,"alphabet_size":3}' >/dev/null
  req3 stream_feed "{\"session\":\"w\",\"symbols\":\"$SYMS\"}" >/dev/null
  CLOSE_RC=0
  req3 stream_close '{"session":"w","checkpoint":true}' >/dev/null 2>&1 || CLOSE_RC=$?
  kill -9 "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""

  # (b) Cold restart on the same store: recovery must succeed and s1 must
  # thaw to the exact baseline detect response.
  start_store_daemon
  if ! req3 stream_open '{"session":"s1","resume":true}' >/dev/null; then
    echo "soak.sh: FAIL — $SITE: s1 did not resume after SIGKILL" >&2
    tail -20 "$WORK/daemon3.log" >&2
    FAILED=1
  fi
  GOT=$(req3 stream_detect '{"session":"s1","threshold":0.5}' || true)
  if [[ $GOT != "$REF" ]]; then
    echo "soak.sh: FAIL — $SITE: thawed detect differs from baseline:" >&2
    echo "  want: $REF" >&2
    echo "  got:  $GOT" >&2
    FAILED=1
  fi
  # Acked-write durability: a checkpoint the daemon acknowledged under the
  # fault must still resume after the kill; an unacknowledged one may or may
  # not exist, but must never resume corrupt (the open either succeeds with
  # a valid session or fails cleanly — the daemon staying up covers that).
  if [[ $CLOSE_RC -eq 0 ]]; then
    if ! req3 stream_open '{"session":"w","resume":true}' >/dev/null; then
      echo "soak.sh: FAIL — $SITE: acked checkpoint lost after SIGKILL" >&2
      FAILED=1
    else
      req3 stream_close '{"session":"w","checkpoint":false}' >/dev/null || true
    fi
  else
    req3 stream_open '{"session":"w","resume":true}' >/dev/null 2>&1 || true
    req3 stream_close '{"session":"w","checkpoint":false}' >/dev/null 2>&1 || true
  fi
  STATS=$(req3 stats '{}' || true)
  if ! python3 -c '
import json, sys
store = json.loads(sys.argv[1])["result"]["store"]
assert store["enabled"], "store disabled"
assert store["recoveries"] >= 1, f"no recovery ran: {store}"
assert store["scrub_errors"] == 0, f"segment scrub found damage: {store}"
' "$STATS" 2>"$WORK/stage3_stats.err"; then
    echo "soak.sh: FAIL — $SITE: store stats after recovery:" >&2
    cat "$WORK/stage3_stats.err" >&2
    echo "  stats: $STATS" >&2
    FAILED=1
  fi
  kill -TERM "$DAEMON_PID"
  RC3=0; wait "$DAEMON_PID" || RC3=$?; DAEMON_PID=""
  if [[ $RC3 -ne 0 ]]; then
    echo "soak.sh: FAIL — $SITE: post-recovery drain exited $RC3" >&2
    tail -20 "$WORK/daemon3.log" >&2
    FAILED=1
  fi
  if [[ $FAILED -ne 0 ]]; then
    exit 1
  fi
  echo "soak.sh: stage 3 [$SITE] PASS — recovered, thawed bit-identical"
done

# A read fault at startup must refuse to serve, not serve damaged data: the
# daemon exits nonzero with a clear message, and a clean retry works.
start3_failed=0
rm -f "$SOCKET3"
"$DAEMON" --socket="$SOCKET3" --store_dir="$STORE3" \
  --faults=store/read:1:repeat >>"$WORK/daemon3.log" 2>&1 || start3_failed=$?
if [[ $start3_failed -eq 0 ]]; then
  echo "soak.sh: FAIL — daemon served a store it could not read" >&2
  exit 1
fi
start_store_daemon
kill -TERM "$DAEMON_PID"
RC3=0; wait "$DAEMON_PID" || RC3=$?; DAEMON_PID=""
if [[ $RC3 -ne 0 ]]; then
  echo "soak.sh: FAIL — stage 3 final clean start exited $RC3" >&2
  exit 1
fi
if grep -qE "Sanitizer|runtime error" "$WORK/daemon3.log"; then
  echo "soak.sh: FAIL — sanitizer findings in the stage 3 daemon log:" >&2
  grep -E "Sanitizer|runtime error" "$WORK/daemon3.log" >&2
  exit 1
fi

echo "soak.sh: PASS — all three stages: zero crashes, structured responses, bounded RSS, clean drain, crash-consistent store"
