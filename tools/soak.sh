#!/usr/bin/env bash
# tools/soak.sh — serving-layer soak test (docs/ROBUSTNESS.md, docs/SERVING.md).
#
# Four stages, each against its own deliberately undersized serving stack:
#
#   Stage 1 (overload + drain): storms periodicad with the closed-loop mine
#   load generator while fault injection drops an accept, an enqueue, a read
#   and a write mid-run, samples the daemon's resident set once a second,
#   and finishes with the nastiest composite: SIGTERM while load is still
#   arriving.
#
#   Stage 2 (multi-tenant sessions): runs the session-lifecycle load
#   (open -> feed -> detect -> close across many tenants) against a daemon
#   whose tenant budgets force continuous eviction/thaw, with faults armed
#   on server/accept, server/read, server/write and event_loop/poll.
#
#   Stage 3 (store crash consistency): for every store/* write fault site,
#   SIGKILLs a --store_dir daemon while that site is failing every write,
#   restarts it cold, and asserts recovery succeeds, a previously drained
#   session thaws byte-identically, acknowledged checkpoints survive, and
#   the segment scrub reports zero errors.
#
#   Stage 4 (multi-node kill + migration): two TCP shards behind
#   periodica_router (tcp/* faults armed on both sides of the wire), plus a
#   standalone control daemon. Streams sessions through the router, SIGKILLs
#   one shard mid-stream, and asserts the router marks it down within one
#   heartbeat interval, a retrying client finishes with zero failed
#   requests, and every migrated session's stream_detect response is
#   byte-identical to the never-migrated control run.
#
#   tools/soak.sh [--build-dir DIR] [--seconds N] [--concurrency N]
#                 [--rss-limit-mb N] [--sessions N] [--tenants N]
#
# Asserts, per stage:
#   1. zero crashes — the daemon stays up through the whole load phase;
#   2. every response the load generator saw was structured (ok / OVERLOADED
#      / QUOTA_EXCEEDED / partial; dropped connections are expected,
#      malformed lines are not): periodica_load exits 0;
#   3. bounded RSS — the daemon's peak resident set stays under
#      --rss-limit-mb despite the sustained request stream;
#   4. clean drain — SIGTERM stops admission, finishes in-flight work,
#      checkpoints open sessions, and the daemon exits 0.
#
# Exits 0 iff all hold for both stages; prints the failing assertion
# otherwise.
set -euo pipefail

BUILD_DIR=build/release
DURATION=60
CONCURRENCY=8
RSS_LIMIT_MB=512
SESSIONS=2000
TENANTS=16
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --seconds) DURATION=$2; shift 2 ;;
    --concurrency) CONCURRENCY=$2; shift 2 ;;
    --rss-limit-mb) RSS_LIMIT_MB=$2; shift 2 ;;
    --sessions) SESSIONS=$2; shift 2 ;;
    --tenants) TENANTS=$2; shift 2 ;;
    *) echo "soak.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

DAEMON=$BUILD_DIR/tools/periodicad
LOAD=$BUILD_DIR/tools/periodica_load
for bin in "$DAEMON" "$LOAD"; do
  if [[ ! -x $bin ]]; then
    echo "soak.sh: $bin is not built (cmake --build --preset release)" >&2
    exit 2
  fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/periodica_soak.XXXXXX")
SOCKET=$WORK/soak.sock
DAEMON_PID=""
LOAD_PID=""
cleanup() {
  [[ -n $DAEMON_PID ]] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  [[ -n $LOAD_PID ]] && kill -9 "$LOAD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# A deliberately small daemon so the load actually overloads it, with a
# global memory budget and one injected fault on each serving-layer site.
"$DAEMON" --socket="$SOCKET" --checkpoint_dir="$WORK/ckpt" \
  --workers=2 --max_queue_depth=4 --max_queue_latency_ms=2000 \
  --memory_budget_bytes=$((256 * 1024 * 1024)) \
  --wedge_timeout_ms=30000 \
  --faults=server/accept:25,job_queue/enqueue:40,server/read:120,server/write:200 \
  >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [[ -S $SOCKET ]] && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — daemon died during startup:" >&2
    cat "$WORK/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -S $SOCKET ]] || { echo "soak.sh: FAIL — socket never appeared" >&2; exit 1; }

"$LOAD" --socket="$SOCKET" --seconds="$DURATION" \
  --concurrency="$CONCURRENCY" --length=4096 --period=25 --sigma=4 \
  >"$WORK/load.json" 2>"$WORK/load.log" &
LOAD_PID=$!

# Sample the daemon's resident set once a second for the load phase, then
# TERM it while requests are still arriving (the last third of the run).
LOAD_PHASE=$((DURATION * 2 / 3))
[[ $LOAD_PHASE -lt 1 ]] && LOAD_PHASE=1
MAX_RSS_KB=0
for _ in $(seq 1 "$LOAD_PHASE"); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — daemon crashed under load:" >&2
    tail -20 "$WORK/daemon.log" >&2
    exit 1
  fi
  rss_kb=$(awk '/^VmRSS:/ {print $2}' "/proc/$DAEMON_PID/status" 2>/dev/null || echo 0)
  [[ ${rss_kb:-0} -gt $MAX_RSS_KB ]] && MAX_RSS_KB=$rss_kb
  sleep 1
done

kill -TERM "$DAEMON_PID"
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
LOAD_RC=0
wait "$LOAD_PID" || LOAD_RC=$?

echo "soak.sh: load summary: $(cat "$WORK/load.json" 2>/dev/null || echo '(missing)')"
echo "soak.sh: daemon peak RSS: $((MAX_RSS_KB / 1024)) MiB (limit ${RSS_LIMIT_MB} MiB)"
echo "soak.sh: daemon exit after SIGTERM mid-load: $DAEMON_RC"

FAILED=0
if [[ $DAEMON_RC -ne 0 ]]; then
  echo "soak.sh: FAIL — SIGTERM drain exited $DAEMON_RC, want 0:" >&2
  tail -20 "$WORK/daemon.log" >&2
  FAILED=1
fi
if [[ $LOAD_RC -ne 0 ]]; then
  echo "soak.sh: FAIL — load generator saw malformed responses:" >&2
  cat "$WORK/load.json" "$WORK/load.log" >&2 || true
  FAILED=1
fi
if [[ $((MAX_RSS_KB / 1024)) -ge $RSS_LIMIT_MB ]]; then
  echo "soak.sh: FAIL — peak RSS $((MAX_RSS_KB / 1024)) MiB >= ${RSS_LIMIT_MB} MiB" >&2
  FAILED=1
fi
if grep -qE "Sanitizer|runtime error" "$WORK/daemon.log"; then
  echo "soak.sh: FAIL — sanitizer findings in the daemon log:" >&2
  grep -E "Sanitizer|runtime error" "$WORK/daemon.log" >&2
  FAILED=1
fi

if [[ $FAILED -ne 0 ]]; then
  exit 1
fi
echo "soak.sh: stage 1 PASS — zero crashes, structured responses, bounded RSS, clean drain"

# --- Stage 2: multi-tenant session soak -------------------------------------
# A fresh daemon with tenant budgets small enough that the session load
# churns through eviction/thaw continuously, and one injected fault on each
# connection-facing site plus the event loop's poll itself (which must be
# absorbed like EINTR). The tenant budget must bite even in the worst-case
# schedule where the load's worker threads serialize (a real mode on
# 1-core CI hosts: only one worker's session slice is resident at a time,
# ~sessions/concurrency/tenants sessions per tenant at ~130 KiB each), so
# it is sized well below one serialized slice, not just below the full
# session count.
SOCKET2=$WORK/soak2.sock
"$DAEMON" --socket="$SOCKET2" --checkpoint_dir="$WORK/ckpt2" \
  --workers=2 --max_queue_depth=64 --max_queue_latency_ms=5000 \
  --session_budget_bytes=$((64 * 1024 * 1024)) \
  --tenant_budget_bytes=$((1 * 1024 * 1024)) \
  --wedge_timeout_ms=30000 \
  --faults=server/accept:15,server/read:60,server/write:110,event_loop/poll:30 \
  >"$WORK/daemon2.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [[ -S $SOCKET2 ]] && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — stage 2 daemon died during startup:" >&2
    cat "$WORK/daemon2.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -S $SOCKET2 ]] || { echo "soak.sh: FAIL — stage 2 socket never appeared" >&2; exit 1; }

# --hold_open_ms keeps every session resident between its detect and close,
# so concurrent workers overlap enough live sessions that the tenant budget
# must evict — the eviction gate below cannot be dodged by fast closes.
"$LOAD" --socket="$SOCKET2" --sessions="$SESSIONS" --tenants="$TENANTS" \
  --concurrency="$CONCURRENCY" --feed_rounds=2 --feed_chunk=64 \
  --detect_every=32 --max_period=16 --hold_open_ms=250 \
  >"$WORK/load2.json" 2>"$WORK/load2.log" &
LOAD_PID=$!

MAX_RSS2_KB=0
while kill -0 "$LOAD_PID" 2>/dev/null; do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — stage 2 daemon crashed under session load:" >&2
    tail -20 "$WORK/daemon2.log" >&2
    exit 1
  fi
  rss_kb=$(awk '/^VmRSS:/ {print $2}' "/proc/$DAEMON_PID/status" 2>/dev/null || echo 0)
  [[ ${rss_kb:-0} -gt $MAX_RSS2_KB ]] && MAX_RSS2_KB=$rss_kb
  sleep 0.5
done
LOAD_RC2=0
wait "$LOAD_PID" || LOAD_RC2=$?
LOAD_PID=""

if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
  echo "soak.sh: FAIL — stage 2 daemon crashed before drain:" >&2
  tail -20 "$WORK/daemon2.log" >&2
  exit 1
fi
kill -TERM "$DAEMON_PID"
DAEMON_RC2=0
wait "$DAEMON_PID" || DAEMON_RC2=$?
DAEMON_PID=""

EVICTIONS=$(python3 -c 'import json,sys; print(int(json.load(open(sys.argv[1])).get("evictions", 0)))' \
  "$WORK/load2.json" 2>/dev/null || echo 0)

echo "soak.sh: stage 2 load summary: $(cat "$WORK/load2.json" 2>/dev/null || echo '(missing)')"
echo "soak.sh: stage 2 daemon peak RSS: $((MAX_RSS2_KB / 1024)) MiB (limit ${RSS_LIMIT_MB} MiB)"
echo "soak.sh: stage 2 daemon exit after SIGTERM: $DAEMON_RC2"

if [[ $DAEMON_RC2 -ne 0 ]]; then
  echo "soak.sh: FAIL — stage 2 SIGTERM drain exited $DAEMON_RC2, want 0:" >&2
  tail -20 "$WORK/daemon2.log" >&2
  FAILED=1
fi
if [[ $LOAD_RC2 -ne 0 ]]; then
  echo "soak.sh: FAIL — stage 2 session load saw unexpected errors:" >&2
  cat "$WORK/load2.json" "$WORK/load2.log" >&2 || true
  FAILED=1
fi
if [[ $((MAX_RSS2_KB / 1024)) -ge $RSS_LIMIT_MB ]]; then
  echo "soak.sh: FAIL — stage 2 peak RSS $((MAX_RSS2_KB / 1024)) MiB >= ${RSS_LIMIT_MB} MiB" >&2
  FAILED=1
fi
if [[ $EVICTIONS -lt 1 ]]; then
  echo "soak.sh: FAIL — stage 2 never evicted a session (budgets did not bite)" >&2
  FAILED=1
fi
if grep -qE "Sanitizer|runtime error" "$WORK/daemon2.log"; then
  echo "soak.sh: FAIL — sanitizer findings in the stage 2 daemon log:" >&2
  grep -E "Sanitizer|runtime error" "$WORK/daemon2.log" >&2
  FAILED=1
fi

if [[ $FAILED -ne 0 ]]; then
  exit 1
fi
echo "soak.sh: stage 2 PASS — session churn under faults, evictions=$EVICTIONS, clean drain"

# --- Stage 3: store crash consistency (SIGKILL mid-write) --------------------
# One daemon lineage over a single --store_dir, killed with SIGKILL while a
# different store/* write site is failing every write, then restarted cold.
# The invariants, per site (docs/ROBUSTNESS.md "Durability"):
#   1. startup recovery always succeeds (torn WAL tails are discarded, never
#      fatal; segment scrub reports zero errors);
#   2. the session checkpointed before the crashes thaws bit-identically —
#      the same stream_detect response, byte for byte, after every kill;
#   3. an acknowledged write survives: if stream_close(checkpoint) returned
#      ok under the injected fault, the session must resume after the kill.
# The WAL rotation threshold is shrunk so checkpoint-sized writes cross the
# rotation and compaction paths (store/segment_write, store/manifest_rename),
# not just the append path.
CLIENT=$BUILD_DIR/tools/periodica_client
if [[ ! -x $CLIENT ]]; then
  echo "soak.sh: $CLIENT is not built (cmake --build --preset release)" >&2
  exit 2
fi
SOCKET3=$WORK/soak3.sock
STORE3=$WORK/store3
SYMS=$(printf 'abcabcabcabc%.0s' $(seq 1 25))  # 300 symbols, period 3

start_store_daemon() {  # args: extra daemon flags
  rm -f "$SOCKET3"
  "$DAEMON" --socket="$SOCKET3" --store_dir="$STORE3" \
    --store_wal_rotate_bytes=4096 --workers=2 "$@" \
    >>"$WORK/daemon3.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [[ -S $SOCKET3 ]] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "soak.sh: FAIL — stage 3 daemon died during startup:" >&2
      tail -20 "$WORK/daemon3.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  [[ -S $SOCKET3 ]] || { echo "soak.sh: FAIL — stage 3 socket never appeared" >&2; exit 1; }
}

req3() {  # method params — prints the response line, returns the client code
  "$CLIENT" --socket="$SOCKET3" --method="$1" --params="$2"
}

# Baseline: establish session s1, capture the reference detect response, and
# let SIGTERM drain checkpoint it into the store.
start_store_daemon
req3 stream_open '{"session":"s1","max_period":16,"alphabet_size":3}' >/dev/null
req3 stream_feed "{\"session\":\"s1\",\"symbols\":\"$SYMS\"}" >/dev/null
REF=$(req3 stream_detect '{"session":"s1","threshold":0.5}')
kill -TERM "$DAEMON_PID"
RC3=0; wait "$DAEMON_PID" || RC3=$?; DAEMON_PID=""
if [[ $RC3 -ne 0 || -z $REF ]]; then
  echo "soak.sh: FAIL — stage 3 baseline drain exited $RC3:" >&2
  tail -20 "$WORK/daemon3.log" >&2
  exit 1
fi

for SITE in store/wal_append store/wal_fsync store/segment_write \
            store/manifest_rename; do
  # (a) Faulted run: every store write through $SITE fails; generate write
  # traffic (a new session closed with a checkpoint), then SIGKILL — the
  # worst case: injected write failures AND a crash with no drain.
  start_store_daemon --faults="$SITE:1:repeat"
  req3 stream_open '{"session":"w","max_period":16,"alphabet_size":3}' >/dev/null
  req3 stream_feed "{\"session\":\"w\",\"symbols\":\"$SYMS\"}" >/dev/null
  CLOSE_RC=0
  req3 stream_close '{"session":"w","checkpoint":true}' >/dev/null 2>&1 || CLOSE_RC=$?
  kill -9 "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""

  # (b) Cold restart on the same store: recovery must succeed and s1 must
  # thaw to the exact baseline detect response.
  start_store_daemon
  if ! req3 stream_open '{"session":"s1","resume":true}' >/dev/null; then
    echo "soak.sh: FAIL — $SITE: s1 did not resume after SIGKILL" >&2
    tail -20 "$WORK/daemon3.log" >&2
    FAILED=1
  fi
  GOT=$(req3 stream_detect '{"session":"s1","threshold":0.5}' || true)
  if [[ $GOT != "$REF" ]]; then
    echo "soak.sh: FAIL — $SITE: thawed detect differs from baseline:" >&2
    echo "  want: $REF" >&2
    echo "  got:  $GOT" >&2
    FAILED=1
  fi
  # Acked-write durability: a checkpoint the daemon acknowledged under the
  # fault must still resume after the kill; an unacknowledged one may or may
  # not exist, but must never resume corrupt (the open either succeeds with
  # a valid session or fails cleanly — the daemon staying up covers that).
  if [[ $CLOSE_RC -eq 0 ]]; then
    if ! req3 stream_open '{"session":"w","resume":true}' >/dev/null; then
      echo "soak.sh: FAIL — $SITE: acked checkpoint lost after SIGKILL" >&2
      FAILED=1
    else
      req3 stream_close '{"session":"w","checkpoint":false}' >/dev/null || true
    fi
  else
    req3 stream_open '{"session":"w","resume":true}' >/dev/null 2>&1 || true
    req3 stream_close '{"session":"w","checkpoint":false}' >/dev/null 2>&1 || true
  fi
  STATS=$(req3 stats '{}' || true)
  if ! python3 -c '
import json, sys
store = json.loads(sys.argv[1])["result"]["store"]
assert store["enabled"], "store disabled"
assert store["recoveries"] >= 1, f"no recovery ran: {store}"
assert store["scrub_errors"] == 0, f"segment scrub found damage: {store}"
' "$STATS" 2>"$WORK/stage3_stats.err"; then
    echo "soak.sh: FAIL — $SITE: store stats after recovery:" >&2
    cat "$WORK/stage3_stats.err" >&2
    echo "  stats: $STATS" >&2
    FAILED=1
  fi
  kill -TERM "$DAEMON_PID"
  RC3=0; wait "$DAEMON_PID" || RC3=$?; DAEMON_PID=""
  if [[ $RC3 -ne 0 ]]; then
    echo "soak.sh: FAIL — $SITE: post-recovery drain exited $RC3" >&2
    tail -20 "$WORK/daemon3.log" >&2
    FAILED=1
  fi
  if [[ $FAILED -ne 0 ]]; then
    exit 1
  fi
  echo "soak.sh: stage 3 [$SITE] PASS — recovered, thawed bit-identical"
done

# A read fault at startup must refuse to serve, not serve damaged data: the
# daemon exits nonzero with a clear message, and a clean retry works.
start3_failed=0
rm -f "$SOCKET3"
"$DAEMON" --socket="$SOCKET3" --store_dir="$STORE3" \
  --faults=store/read:1:repeat >>"$WORK/daemon3.log" 2>&1 || start3_failed=$?
if [[ $start3_failed -eq 0 ]]; then
  echo "soak.sh: FAIL — daemon served a store it could not read" >&2
  exit 1
fi
start_store_daemon
kill -TERM "$DAEMON_PID"
RC3=0; wait "$DAEMON_PID" || RC3=$?; DAEMON_PID=""
if [[ $RC3 -ne 0 ]]; then
  echo "soak.sh: FAIL — stage 3 final clean start exited $RC3" >&2
  exit 1
fi
if grep -qE "Sanitizer|runtime error" "$WORK/daemon3.log"; then
  echo "soak.sh: FAIL — sanitizer findings in the stage 3 daemon log:" >&2
  grep -E "Sanitizer|runtime error" "$WORK/daemon3.log" >&2
  exit 1
fi

# --- Stage 4: multi-node SIGKILL + live migration -----------------------------
# Two TCP shards behind periodica_router, tcp/* faults armed on both sides
# of the wire, a shared checkpoint directory, and a standalone control
# daemon that never migrates. Sessions stream through the router with
# explicit feed offsets; one shard is SIGKILLed mid-stream. Asserts
# (docs/SERVING.md "Multi-node serving"):
#   1. the router marks the dead shard down within one heartbeat interval;
#   2. a retrying client finishes with zero failed requests — every open,
#      feed and detect eventually succeeds through the kill window;
#   3. every migrated session's stream_detect response is byte-identical to
#      the control daemon's (the migration moved state, not approximated it);
#   4. the surviving stack drains cleanly: router, shard and control all
#      exit 0 on SIGTERM.
ROUTER=$BUILD_DIR/tools/periodica_router
if [[ ! -x $ROUTER ]]; then
  echo "soak.sh: $ROUTER is not built (cmake --build --preset release)" >&2
  exit 2
fi

CKPT4=$WORK/ckpt4
SHARD0_PID=""
SHARD1_PID=""
CONTROL_PID=""
ROUTER_PID=""
cleanup4() {
  for pid in "$SHARD0_PID" "$SHARD1_PID" "$CONTROL_PID" "$ROUTER_PID"; do
    [[ -n $pid ]] && kill -9 "$pid" 2>/dev/null || true
  done
}
trap 'cleanup4; cleanup' EXIT

start_shard() {  # args: index — sets SHARD<index>_PID and SHARD<index>_PORT
  local idx=$1
  local sock=$WORK/shard$idx.sock
  rm -f "$sock"
  # tcp/* faults: one dropped accept, one torn read, one failed write per
  # shard — the transport must absorb each without corrupting other streams.
  "$DAEMON" --socket="$sock" --tcp_port=0 \
    --checkpoint_dir="$CKPT4" --checkpoint_each_feed --workers=2 \
    --faults=tcp/accept:7,tcp/read:30,tcp/write:50 \
    >"$WORK/shard$idx.log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^periodicad: tcp listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/shard$idx.log" | head -1)
    [[ -n $port && -S $sock ]] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "soak.sh: FAIL — stage 4 shard $idx died during startup:" >&2
      cat "$WORK/shard$idx.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z $port ]]; then
    echo "soak.sh: FAIL — stage 4 shard $idx never reported its TCP port" >&2
    exit 1
  fi
  eval "SHARD${idx}_PID=$pid"
  eval "SHARD${idx}_PORT=$port"
}

start_shard 0
start_shard 1

SOCKET4C=$WORK/control4.sock
"$DAEMON" --socket="$SOCKET4C" --workers=2 >"$WORK/control4.log" 2>&1 &
CONTROL_PID=$!
for _ in $(seq 1 100); do
  [[ -S $SOCKET4C ]] && break
  sleep 0.1
done
[[ -S $SOCKET4C ]] || { echo "soak.sh: FAIL — stage 4 control socket never appeared" >&2; exit 1; }

ROUTER_SOCK=$WORK/router4.sock
"$ROUTER" --listen_socket="$ROUTER_SOCK" \
  --shards="s0=127.0.0.1:$SHARD0_PORT,s1=127.0.0.1:$SHARD1_PORT" \
  --heartbeat_ms=200 --reconnect_base_ms=50 --reconnect_max_ms=400 \
  --faults=tcp/connect:4,tcp/read:40,tcp/write:60 \
  >"$WORK/router4.log" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
  [[ -S $ROUTER_SOCK ]] && break
  if ! kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "soak.sh: FAIL — stage 4 router died during startup:" >&2
    cat "$WORK/router4.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -S $ROUTER_SOCK ]] || { echo "soak.sh: FAIL — stage 4 router socket never appeared" >&2; exit 1; }

router_stat() {  # key — prints result.<key> from the router's stats, or -1
  "$CLIENT" --socket="$ROUTER_SOCK" --method=stats 2>/dev/null \
    | python3 -c 'import json,sys
try: print(json.loads(sys.stdin.readline())["result"][sys.argv[1]])
except Exception: print(-1)' "$1"
}

for _ in $(seq 1 50); do
  [[ $(router_stat up_count) == 2 ]] && break
  sleep 0.1
done
if [[ $(router_stat up_count) != 2 ]]; then
  echo "soak.sh: FAIL — stage 4 router never saw both shards up" >&2
  cat "$WORK/router4.log" >&2
  exit 1
fi

# Requests that must eventually succeed: retry I/O drops and OVERLOADED on a
# fresh connection (feeds carry offsets, so replays are idempotent). A
# request that exhausts its retries is a failed request — the zero-failures
# assertion.
req4() {  # method params — prints the last response line
  local method=$1 params=$2 rc=0 out=""
  for _ in $(seq 1 20); do
    rc=0
    out=$("$CLIENT" --socket="$ROUTER_SOCK" --method="$method" \
      --params="$params" --max_retries=3 2>/dev/null) || rc=$?
    # The client echoes every response it saw, including retried
    # OVERLOADED ones; only the last line is the settled answer.
    if [[ $rc -eq 0 ]]; then printf '%s\n' "${out##*$'\n'}"; return 0; fi
    sleep 0.2
  done
  echo "soak.sh: FAIL — stage 4 request '$method' never succeeded (rc=$rc): $out" >&2
  {
    echo "--- router4.log (tail) ---"; tail -30 "$WORK/router4.log"
    echo "--- shard0.log (tail) ---"; tail -10 "$WORK/shard0.log"
    echo "--- shard1.log (tail) ---"; tail -10 "$WORK/shard1.log"
  } >&2
  return 1
}
reqc() {  # method params — same request against the control daemon
  "$CLIENT" --socket="$SOCKET4C" --method="$1" --params="$2"
}

CHUNK_A=$(printf 'abcabcabcabc%.0s' $(seq 1 12))  # 144 symbols, period 3
CHUNK_B=$(printf 'abcabcabcabc%.0s' $(seq 1 12))
TENANTS4="alpha beta"
SESSIONS4="m0 m1 m2 m3 m4 m5"

for tenant in $TENANTS4; do
  for name in $SESSIONS4; do
    OPEN="{\"tenant\":\"$tenant\",\"session\":\"$name\",\"max_period\":16,\"alphabet_size\":3}"
    req4 stream_open "$OPEN" >/dev/null || exit 1
    reqc stream_open "$OPEN" >/dev/null
    FEED="{\"tenant\":\"$tenant\",\"session\":\"$name\",\"symbols\":\"$CHUNK_A\",\"offset\":0}"
    req4 stream_feed "$FEED" >/dev/null || exit 1
    reqc stream_feed "$FEED" >/dev/null
  done
done

# SIGKILL one shard mid-stream; the router must notice within one heartbeat
# interval (200ms ping cadence, 400ms deadline — 2s of polling is already
# generous headroom on a loaded host).
kill -9 "$SHARD0_PID"
wait "$SHARD0_PID" 2>/dev/null || true
SHARD0_PID=""
DETECTED=0
for _ in $(seq 1 20); do
  if [[ $(router_stat up_count) == 1 ]]; then DETECTED=1; break; fi
  sleep 0.1
done
if [[ $DETECTED -ne 1 ]]; then
  echo "soak.sh: FAIL — stage 4 router did not mark the killed shard down in time" >&2
  cat "$WORK/router4.log" >&2
  exit 1
fi

# Keep streaming through the kill: sessions that lived on the dead shard
# migrate (resume from the shared checkpoint dir) on first touch.
for tenant in $TENANTS4; do
  for name in $SESSIONS4; do
    FEED="{\"tenant\":\"$tenant\",\"session\":\"$name\",\"symbols\":\"$CHUNK_B\",\"offset\":${#CHUNK_A}}"
    req4 stream_feed "$FEED" >/dev/null || exit 1
    reqc stream_feed "$FEED" >/dev/null
  done
done

MIGRATION_MISMATCH=0
for tenant in $TENANTS4; do
  for name in $SESSIONS4; do
    DETECT="{\"tenant\":\"$tenant\",\"session\":\"$name\",\"threshold\":0.5}"
    ROUTED=$(req4 stream_detect "$DETECT") || exit 1
    CONTROLLED=$(reqc stream_detect "$DETECT")
    if [[ $ROUTED != "$CONTROLLED" ]]; then
      echo "soak.sh: FAIL — stage 4 $tenant/$name migrated detect differs:" >&2
      echo "  control: $CONTROLLED" >&2
      echo "  routed:  $ROUTED" >&2
      MIGRATION_MISMATCH=1
    fi
  done
done
[[ $MIGRATION_MISMATCH -eq 0 ]] || exit 1

MIGRATED=$(router_stat sessions_migrated)
if [[ $MIGRATED -lt 1 ]]; then
  echo "soak.sh: FAIL — stage 4 kill migrated no sessions (placement skew?)" >&2
  exit 1
fi

# Clean drain across the surviving stack.
DRAIN_FAIL=0
kill -TERM "$ROUTER_PID"
RC4=0; wait "$ROUTER_PID" || RC4=$?; ROUTER_PID=""
[[ $RC4 -eq 0 ]] || { echo "soak.sh: FAIL — stage 4 router drain exited $RC4" >&2; DRAIN_FAIL=1; }
kill -TERM "$SHARD1_PID"
RC4=0; wait "$SHARD1_PID" || RC4=$?; SHARD1_PID=""
[[ $RC4 -eq 0 ]] || { echo "soak.sh: FAIL — stage 4 shard drain exited $RC4" >&2; DRAIN_FAIL=1; }
kill -TERM "$CONTROL_PID"
RC4=0; wait "$CONTROL_PID" || RC4=$?; CONTROL_PID=""
[[ $RC4 -eq 0 ]] || { echo "soak.sh: FAIL — stage 4 control drain exited $RC4" >&2; DRAIN_FAIL=1; }
if grep -qE "Sanitizer|runtime error" "$WORK/shard0.log" "$WORK/shard1.log" \
    "$WORK/router4.log" "$WORK/control4.log"; then
  echo "soak.sh: FAIL — sanitizer findings in the stage 4 logs:" >&2
  grep -E "Sanitizer|runtime error" "$WORK/shard0.log" "$WORK/shard1.log" \
    "$WORK/router4.log" "$WORK/control4.log" >&2
  DRAIN_FAIL=1
fi
[[ $DRAIN_FAIL -eq 0 ]] || exit 1
echo "soak.sh: stage 4 PASS — shard killed, down in one heartbeat, $MIGRATED sessions migrated byte-identically, zero failed requests"

echo "soak.sh: PASS — all four stages: zero crashes, structured responses, bounded RSS, clean drain, crash-consistent store, live migration"
