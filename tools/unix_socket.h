#ifndef PERIODICA_TOOLS_UNIX_SOCKET_H_
#define PERIODICA_TOOLS_UNIX_SOCKET_H_

// Unix-domain-socket helpers shared by periodicad, its client, the load
// generator and the end-to-end tests. Newline-delimited messages (one JSON
// document per line, docs/SERVING.md); all functions return Status instead
// of throwing, matching the library idiom.
//
// Two usage shapes share the same framing:
//   - blocking callers (client, load generator, tests) use LineReader /
//     SendLine, which retry EINTR and short reads/writes internally;
//   - the event-loop daemon puts fds in non-blocking mode (SetNonBlocking)
//     and composes LineBuffer with DrainReadable / SendSome, which stop at
//     EAGAIN instead of blocking.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <string>

#include "periodica/util/result.h"
#include "periodica/util/status.h"
#include "periodica/util/tcp.h"

namespace periodica::tools {

/// An owned file descriptor (closes on destruction; movable) — the same
/// type the TCP helpers in util/tcp.h hand out, so Unix-socket and TCP
/// connections flow through identical plumbing.
using FdHandle = util::UniqueFd;

inline Status FillSockAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

/// Binds and listens on a Unix stream socket at `path` (unlinking any stale
/// socket file first).
inline Result<FdHandle> ListenUnix(const std::string& path, int backlog = 64) {
  sockaddr_un addr{};
  PERIODICA_RETURN_NOT_OK(FillSockAddr(path, &addr));
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError("bind(" + path +
                           "): " + std::string(std::strerror(errno)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError("listen(" + path +
                           "): " + std::string(std::strerror(errno)));
  }
  return fd;
}

/// Connects to the Unix stream socket at `path`.
inline Result<FdHandle> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  PERIODICA_RETURN_NOT_OK(FillSockAddr(path, &addr));
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  // lint: blocking(connect): one-shot client dial — no event loop here
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::IOError("connect(" + path +
                           "): " + std::string(std::strerror(errno)));
  }
  return fd;
}

/// Switches `fd` to non-blocking mode (event-loop registration).
inline Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// Writes `line` plus a trailing newline, retrying on EINTR and partial
/// writes.
inline Status SendLine(int fd, const std::string& line) {
  std::string wire = line;
  wire.push_back('\n');
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // lint: blocking(send): blocking helper for one-shot clients and tests
    const ssize_t wrote = ::send(fd, wire.data() + sent, wire.size() - sent,
                                 MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send(): " + std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return Status::OK();
}

/// Newline framing over externally fed bytes: the transport-independent
/// core of LineReader, and the per-connection input state of the event-loop
/// daemon (which feeds it whatever recv returned and pops complete lines).
/// `max_line` bounds a single message so a malicious or broken peer cannot
/// balloon memory; bytes arriving one at a time (short reads) frame
/// identically to one big write.
class LineBuffer {
 public:
  explicit LineBuffer(std::size_t max_line = 64u << 20)
      : max_line_(max_line) {}

  /// Appends raw bytes. Fails with IOError as soon as the unterminated tail
  /// exceeds `max_line` (complete-but-unpopped lines never trip it).
  Status Feed(const char* data, std::size_t size) {
    buffer_.append(data, size);
    if (buffer_.find('\n', searched_) == std::string::npos) {
      // No newline anywhere: remember that so the next Feed/NextLine only
      // scans fresh bytes (keeps pathological long lines O(n), not O(n^2)).
      searched_ = buffer_.size();
      if (buffer_.size() > max_line_) {
        return Status::IOError("line exceeds " + std::to_string(max_line_) +
                               " bytes");
      }
    }
    return Status::OK();
  }

  /// Pops the next complete line (without its newline), or nullopt when no
  /// full line is buffered yet.
  std::optional<std::string> NextLine() {
    const std::size_t newline = buffer_.find('\n', searched_);
    if (newline == std::string::npos) {
      searched_ = buffer_.size();
      return std::nullopt;
    }
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    searched_ = 0;
    return line;
  }

  /// True when a partial (unterminated) message is pending — EOF now means
  /// the peer died mid-line.
  [[nodiscard]] bool mid_line() const { return !buffer_.empty(); }
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_line_;  ///< non-const so a fresh LineBuffer can be assigned
  std::string buffer_;
  std::size_t searched_ = 0;  ///< prefix known to contain no newline
};

/// Drains everything currently readable from non-blocking `fd` into
/// `buffer`. Returns true on EOF (peer closed), false once the socket would
/// block; IOError on a read failure or an oversized line.
inline Result<bool> DrainReadable(int fd, LineBuffer* buffer) {
  while (true) {
    char chunk[16384];
    // lint: blocking(recv): fd is non-blocking — stops at EAGAIN
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return Status::IOError("recv(): " + std::string(std::strerror(errno)));
    }
    if (got == 0) return true;
    PERIODICA_RETURN_NOT_OK(buffer->Feed(chunk, static_cast<std::size_t>(got)));
  }
}

/// Sends as much of `data` from `*offset` onward as non-blocking `fd`
/// accepts, advancing `*offset` past what went out (short writes leave the
/// remainder for the next writable event). Returns true when everything has
/// been sent, false when the socket filled up.
inline Result<bool> SendSome(int fd, const std::string& data,
                             std::size_t* offset) {
  while (*offset < data.size()) {
    // lint: blocking(send): fd is non-blocking — stops at EAGAIN
    const ssize_t wrote = ::send(fd, data.data() + *offset,
                                 data.size() - *offset, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return Status::IOError("send(): " + std::string(std::strerror(errno)));
    }
    *offset += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Buffered newline-framed blocking reader for one connection (LineBuffer
/// over blocking recv).
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line = 64u << 20)
      : fd_(fd), buffer_(max_line) {}

  /// Reads the next line (without the newline). NotFound signals clean EOF
  /// before any partial line; IOError a read failure or an oversized line.
  Result<std::string> Next() {
    while (true) {
      if (std::optional<std::string> line = buffer_.NextLine()) {
        return *std::move(line);
      }
      char chunk[4096];
      // lint: blocking(recv): blocking reader for one-shot clients and tests
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv(): " +
                               std::string(std::strerror(errno)));
      }
      if (got == 0) {
        if (buffer_.mid_line()) {
          return Status::IOError("connection closed mid-line");
        }
        return Status::NotFound("end of stream");
      }
      PERIODICA_RETURN_NOT_OK(
          buffer_.Feed(chunk, static_cast<std::size_t>(got)));
    }
  }

 private:
  int fd_;
  LineBuffer buffer_;
};

/// Dials whichever transport the flags selected: a non-empty `tcp_spec`
/// ("host:port") wins, otherwise the Unix socket at `socket_path`. Shared
/// by periodica_client and periodica_load so both speak to single daemons,
/// TCP shards and the router with the same flag surface.
inline Result<FdHandle> DialServer(const std::string& socket_path,
                                   const std::string& tcp_spec) {
  if (!tcp_spec.empty()) {
    PERIODICA_ASSIGN_OR_RETURN(const util::TcpEndpoint endpoint,
                               util::ParseHostPort(tcp_spec));
    return util::TcpConnectBlocking(endpoint.host, endpoint.port);
  }
  return ConnectUnix(socket_path);
}

}  // namespace periodica::tools

#endif  // PERIODICA_TOOLS_UNIX_SOCKET_H_
