#ifndef PERIODICA_TOOLS_UNIX_SOCKET_H_
#define PERIODICA_TOOLS_UNIX_SOCKET_H_

// Small blocking Unix-domain-socket helpers shared by periodicad, its
// client, the load generator and the end-to-end tests. Newline-delimited
// messages (one JSON document per line, docs/SERVING.md); all functions
// return Status instead of throwing, matching the library idiom.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "periodica/util/result.h"
#include "periodica/util/status.h"

namespace periodica::tools {

/// An owned file descriptor (closes on destruction; movable).
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { Close(); }
  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

inline Status FillSockAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

/// Binds and listens on a Unix stream socket at `path` (unlinking any stale
/// socket file first).
inline Result<FdHandle> ListenUnix(const std::string& path, int backlog = 64) {
  sockaddr_un addr{};
  PERIODICA_RETURN_NOT_OK(FillSockAddr(path, &addr));
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError("bind(" + path +
                           "): " + std::string(std::strerror(errno)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError("listen(" + path +
                           "): " + std::string(std::strerror(errno)));
  }
  return fd;
}

/// Connects to the Unix stream socket at `path`.
inline Result<FdHandle> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  PERIODICA_RETURN_NOT_OK(FillSockAddr(path, &addr));
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::IOError("connect(" + path +
                           "): " + std::string(std::strerror(errno)));
  }
  return fd;
}

/// Writes `line` plus a trailing newline, retrying on EINTR and partial
/// writes.
inline Status SendLine(int fd, const std::string& line) {
  std::string wire = line;
  wire.push_back('\n');
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t wrote =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send(): " + std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return Status::OK();
}

/// Buffered newline-framed reader for one connection. `max_line` bounds a
/// single message so a malicious or broken peer cannot balloon memory.
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line = 64u << 20)
      : fd_(fd), max_line_(max_line) {}

  /// Reads the next line (without the newline). NotFound signals clean EOF
  /// before any partial line; IOError a read failure or an oversized line.
  Result<std::string> Next() {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      if (buffer_.size() > max_line_) {
        return Status::IOError("line exceeds " + std::to_string(max_line_) +
                               " bytes");
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv(): " +
                               std::string(std::strerror(errno)));
      }
      if (got == 0) {
        if (!buffer_.empty()) {
          return Status::IOError("connection closed mid-line");
        }
        return Status::NotFound("end of stream");
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
};

}  // namespace periodica::tools

#endif  // PERIODICA_TOOLS_UNIX_SOCKET_H_
